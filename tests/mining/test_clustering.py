"""Unit tests for k-means, agglomerative clustering and silhouette."""

import pytest

from repro.errors import AnalysisError
from repro.mining.clustering import agglomerative, kmeans, silhouette_score

# Two well-separated blobs in 2-D.
BLOB_A = [(0.0, 0.0), (0.1, 0.0), (0.0, 0.1), (0.1, 0.1)]
BLOB_B = [(5.0, 5.0), (5.1, 5.0), (5.0, 5.1), (5.1, 5.1)]
POINTS = BLOB_A + BLOB_B


def groups_of(assignment):
    return {frozenset(i for i, a in enumerate(assignment) if a == c)
            for c in set(assignment)}


class TestKMeans:
    def test_separates_blobs(self):
        assignment = kmeans(POINTS, k=2, seed=1)
        assert groups_of(assignment) == {frozenset(range(4)),
                                         frozenset(range(4, 8))}

    def test_k_equals_n(self):
        assignment = kmeans(POINTS, k=len(POINTS), seed=0)
        assert len(set(assignment)) == len(POINTS)

    def test_k_one(self):
        assert set(kmeans(POINTS, k=1)) == {0}

    def test_deterministic_under_seed(self):
        assert kmeans(POINTS, k=2, seed=5) == kmeans(POINTS, k=2, seed=5)

    def test_invalid_k_raises(self):
        with pytest.raises(AnalysisError):
            kmeans(POINTS, k=0)
        with pytest.raises(AnalysisError):
            kmeans(POINTS, k=99)

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            kmeans([], k=1)

    def test_duplicate_points(self):
        points = [(1.0, 1.0)] * 5 + [(9.0, 9.0)] * 5
        assignment = kmeans(points, k=2, seed=3)
        assert len(set(assignment)) == 2


class TestAgglomerative:
    def test_separates_blobs(self):
        assignment = agglomerative(POINTS, k=2)
        assert groups_of(assignment) == {frozenset(range(4)),
                                         frozenset(range(4, 8))}

    def test_k_equals_n(self):
        assignment = agglomerative(POINTS, k=len(POINTS))
        assert len(set(assignment)) == len(POINTS)

    def test_invalid_k_raises(self):
        with pytest.raises(AnalysisError):
            agglomerative(POINTS, k=0)

    def test_compact_labels(self):
        assignment = agglomerative(POINTS, k=3)
        assert set(assignment) == {0, 1, 2}


class TestSilhouette:
    def test_good_clustering_high_score(self):
        assignment = [0, 0, 0, 0, 1, 1, 1, 1]
        assert silhouette_score(POINTS, assignment) > 0.9

    def test_bad_clustering_low_score(self):
        assignment = [0, 1, 0, 1, 0, 1, 0, 1]
        good = silhouette_score(POINTS, [0] * 4 + [1] * 4)
        bad = silhouette_score(POINTS, assignment)
        assert bad < good

    def test_bounds(self):
        score = silhouette_score(POINTS, [0, 0, 1, 1, 0, 0, 1, 1])
        assert -1.0 <= score <= 1.0

    def test_singleton_contributes_zero(self):
        points = [(0.0,), (0.1,), (5.0,)]
        score = silhouette_score(points, [0, 0, 1])
        assert -1.0 <= score <= 1.0

    def test_single_cluster_raises(self):
        with pytest.raises(AnalysisError):
            silhouette_score(POINTS, [0] * 8)

    def test_misaligned_raises(self):
        with pytest.raises(AnalysisError):
            silhouette_score(POINTS, [0, 1])
