"""Unit tests for the birth-time Naive Bayes predictor."""

import pytest

from repro.errors import AnalysisError
from repro.mining.predictor import (
    NaiveBayesPredictor,
    leave_one_out,
    size_bin,
    table_bin,
)

SAMPLES = [
    {"bucket": "m0", "size": "small"},
    {"bucket": "m0", "size": "small"},
    {"bucket": "m0", "size": "large"},
    {"bucket": "late", "size": "small"},
    {"bucket": "late", "size": "large"},
    {"bucket": "late", "size": "large"},
]
LABELS = ["flat", "flat", "flat", "late", "late", "late"]


class TestBins:
    def test_size_bins_monotone(self):
        order = ["tiny", "small", "medium", "large"]
        bins = [size_bin(n) for n in (1, 10, 30, 100)]
        assert bins == order

    def test_table_bins(self):
        assert table_bin(1) == "1"
        assert table_bin(3) == "2-4"
        assert table_bin(7) == "5-10"
        assert table_bin(20) == ">10"


class TestNaiveBayes:
    def test_learns_dominant_feature(self):
        model = NaiveBayesPredictor().fit(SAMPLES, LABELS)
        assert model.predict({"bucket": "m0", "size": "small"}) == "flat"
        assert model.predict({"bucket": "late", "size": "large"}) \
            == "late"

    def test_proba_normalized(self):
        model = NaiveBayesPredictor().fit(SAMPLES, LABELS)
        posterior = model.predict_proba({"bucket": "m0", "size": "small"})
        assert sum(posterior.values()) == pytest.approx(1.0)
        assert all(0 <= p <= 1 for p in posterior.values())

    def test_unseen_value_does_not_crash(self):
        model = NaiveBayesPredictor().fit(SAMPLES, LABELS)
        assert model.predict({"bucket": "weird", "size": "small"}) \
            in ("flat", "late")

    def test_smoothing_avoids_zero_probability(self):
        model = NaiveBayesPredictor(alpha=1.0).fit(SAMPLES, LABELS)
        posterior = model.predict_proba(
            {"bucket": "m0", "size": "large"})
        assert min(posterior.values()) > 0

    def test_empty_fit_raises(self):
        with pytest.raises(AnalysisError):
            NaiveBayesPredictor().fit([], [])

    def test_misaligned_raises(self):
        with pytest.raises(AnalysisError):
            NaiveBayesPredictor().fit(SAMPLES, LABELS[:2])

    def test_predict_before_fit_raises(self):
        with pytest.raises(AnalysisError):
            NaiveBayesPredictor().predict({"a": "b"})

    def test_bad_alpha_raises(self):
        with pytest.raises(AnalysisError):
            NaiveBayesPredictor(alpha=0)


class TestLeaveOneOut:
    def test_reports_all_accuracies(self):
        report = leave_one_out(SAMPLES, LABELS, bucket_feature="bucket")
        assert report.total == len(SAMPLES)
        assert 0 <= report.accuracy <= 1
        assert 0 <= report.baseline_accuracy <= 1
        assert 0 <= report.bucket_only_accuracy <= 1

    def test_separable_data_high_accuracy(self):
        report = leave_one_out(SAMPLES, LABELS, bucket_feature="bucket")
        assert report.accuracy == 1.0
        assert report.bucket_only_accuracy == 1.0
        assert report.baseline_accuracy == 0.5

    def test_too_few_raises(self):
        with pytest.raises(AnalysisError):
            leave_one_out(SAMPLES[:1], LABELS[:1])
