"""Unit and property tests for the categorical decision tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.mining.decision_tree import DecisionTree, gini_impurity


class TestGini:
    def test_pure_is_zero(self):
        assert gini_impurity(["a", "a", "a"]) == 0.0

    def test_empty_is_zero(self):
        assert gini_impurity([]) == 0.0

    def test_even_binary_is_half(self):
        assert gini_impurity(["a", "b"]) == pytest.approx(0.5)

    def test_bounded(self):
        assert 0 <= gini_impurity(list("aabbccdd")) < 1


SAMPLES = [
    {"color": "red", "size": "big"},
    {"color": "red", "size": "small"},
    {"color": "blue", "size": "big"},
    {"color": "blue", "size": "small"},
]
LABELS = ["hot", "hot", "cold", "cold"]


class TestFitPredict:
    def test_perfect_separation_on_one_feature(self):
        tree = DecisionTree().fit(SAMPLES, LABELS)
        assert tree.training_errors(SAMPLES, LABELS) == []
        assert tree.root.feature == "color"

    def test_predict_unseen_value_falls_back(self):
        tree = DecisionTree().fit(SAMPLES, LABELS)
        assert tree.predict({"color": "green", "size": "big"}) \
            in ("hot", "cold")

    def test_xor_not_learnable_greedily(self):
        # Greedy gini gain is exactly zero for both XOR features, so the
        # tree (correctly, per CART semantics) stays a majority leaf.
        samples = [{"a": x, "b": y} for x in "01" for y in "01"]
        labels = [str(int(s["a"] != s["b"])) for s in samples]
        tree = DecisionTree(max_depth=2).fit(samples, labels)
        assert tree.root.is_leaf

    def test_hierarchical_labels_learned(self):
        samples = [{"a": x, "b": y} for x in "012" for y in "01"]
        labels = [s["a"] + s["b"] for s in samples]
        tree = DecisionTree(max_depth=3).fit(samples, labels)
        assert tree.training_errors(samples, labels) == []

    def test_max_depth_zero_is_majority_vote(self):
        tree = DecisionTree(max_depth=0).fit(SAMPLES, ["x", "x", "x", "y"])
        assert tree.root.is_leaf
        assert tree.predict({"color": "red", "size": "big"}) == "x"

    def test_min_samples_split(self):
        tree = DecisionTree(min_samples_split=10).fit(SAMPLES, LABELS)
        assert tree.root.is_leaf

    def test_constant_features_yield_leaf(self):
        samples = [{"a": "x"}] * 4
        tree = DecisionTree().fit(samples, ["p", "p", "q", "q"])
        assert tree.root.is_leaf

    def test_empty_input_raises(self):
        with pytest.raises(AnalysisError):
            DecisionTree().fit([], [])

    def test_misaligned_raises(self):
        with pytest.raises(AnalysisError):
            DecisionTree().fit(SAMPLES, ["a"])

    def test_inconsistent_features_raise(self):
        with pytest.raises(AnalysisError):
            DecisionTree().fit([{"a": "1"}, {"b": "1"}], ["x", "y"])

    def test_predict_before_fit_raises(self):
        with pytest.raises(AnalysisError):
            DecisionTree().predict({"a": "1"})

    def test_negative_depth_raises(self):
        with pytest.raises(AnalysisError):
            DecisionTree(max_depth=-1)


class TestRender:
    def test_render_mentions_feature_and_leaves(self):
        tree = DecisionTree().fit(SAMPLES, LABELS)
        text = tree.render()
        assert "color" in text
        assert "hot" in text and "cold" in text

    def test_render_before_fit_raises(self):
        with pytest.raises(AnalysisError):
            DecisionTree().render()

    def test_leaf_count(self):
        tree = DecisionTree().fit(SAMPLES, LABELS)
        assert tree.root.leaf_count() == 2

    def test_dot_export(self):
        tree = DecisionTree().fit(SAMPLES, LABELS)
        dot = tree.to_dot()
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert 'label="color?' in dot
        assert dot.count("->") == 2  # one edge per branch value

    def test_dot_before_fit_raises(self):
        with pytest.raises(AnalysisError):
            DecisionTree().to_dot()

    def test_dot_leaf_only(self):
        tree = DecisionTree(max_depth=0).fit(SAMPLES, LABELS)
        dot = tree.to_dot("t")
        assert "digraph t" in dot
        assert "->" not in dot


@settings(max_examples=60, deadline=None)
@given(data=st.lists(
    st.tuples(st.sampled_from("abc"), st.sampled_from("xy"),
              st.sampled_from("pq")),
    min_size=1, max_size=40))
def test_deep_tree_fits_functional_labels(data):
    """When the label is a function of the features, an unbounded tree
    reaches zero training error."""
    samples = [{"f1": a, "f2": b} for a, b, _ in data]
    labels = [a + b for a, b, _ in data]  # label determined by features
    tree = DecisionTree(max_depth=10).fit(samples, labels)
    assert tree.training_errors(samples, labels) == []


@settings(max_examples=60, deadline=None)
@given(data=st.lists(
    st.tuples(st.sampled_from("ab"), st.sampled_from("pq")),
    min_size=1, max_size=30))
def test_prediction_total(data):
    samples = [{"f": a} for a, _ in data]
    labels = [l for _, l in data]
    tree = DecisionTree().fit(samples, labels)
    for value in "abcz":
        assert tree.predict({"f": value}) in set(labels)
