"""Unit + property tests for Spearman correlation (vs scipy)."""

import math

import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as scipy_stats

from repro.errors import AnalysisError
from repro.mining.correlation import rankdata, spearman_matrix, spearman_rho


class TestRankData:
    def test_simple(self):
        assert rankdata([10, 30, 20]) == [1.0, 3.0, 2.0]

    def test_ties_get_average_rank(self):
        assert rankdata([5, 5, 1]) == [2.5, 2.5, 1.0]

    def test_all_equal(self):
        assert rankdata([7, 7, 7]) == [2.0, 2.0, 2.0]

    def test_empty(self):
        assert rankdata([]) == []

    def test_matches_scipy(self):
        values = [3.1, 2.2, 2.2, 9.0, -1.0, 2.2]
        assert rankdata(values) == list(scipy_stats.rankdata(values))


class TestSpearman:
    def test_perfect_positive(self):
        assert spearman_rho([1, 2, 3], [10, 20, 30]) \
            == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert spearman_rho([1, 2, 3], [5, 4, 3]) == pytest.approx(-1.0)

    def test_monotone_nonlinear_is_one(self):
        x = [1, 2, 3, 4, 5]
        y = [v ** 3 for v in x]
        assert spearman_rho(x, y) == pytest.approx(1.0)

    def test_constant_sample_nan(self):
        assert math.isnan(spearman_rho([1, 1, 1], [1, 2, 3]))

    def test_length_mismatch_raises(self):
        with pytest.raises(AnalysisError):
            spearman_rho([1], [1, 2])

    def test_too_short_raises(self):
        with pytest.raises(AnalysisError):
            spearman_rho([1], [2])


@settings(max_examples=100, deadline=None)
@given(pairs=st.lists(
    st.tuples(st.floats(-100, 100, allow_nan=False),
              st.floats(-100, 100, allow_nan=False)),
    min_size=3, max_size=50))
def test_matches_scipy_property(pairs):
    x = [p[0] for p in pairs]
    y = [p[1] for p in pairs]
    ours = spearman_rho(x, y)
    theirs = scipy_stats.spearmanr(x, y).statistic
    if math.isnan(theirs):
        assert math.isnan(ours)
    else:
        assert ours == pytest.approx(theirs, abs=1e-9)


@settings(max_examples=80, deadline=None)
@given(pairs=st.lists(
    st.tuples(st.integers(-50, 50), st.integers(-50, 50)),
    min_size=3, max_size=40))
def test_symmetry_and_bounds(pairs):
    x = [p[0] for p in pairs]
    y = [p[1] for p in pairs]
    rho_xy = spearman_rho(x, y)
    rho_yx = spearman_rho(y, x)
    if not math.isnan(rho_xy):
        assert -1 - 1e-9 <= rho_xy <= 1 + 1e-9
        assert rho_xy == pytest.approx(rho_yx)


class TestMatrix:
    def test_diagonal_is_one(self):
        matrix = spearman_matrix({"a": [1, 2, 3], "b": [3, 1, 2]})
        assert matrix[("a", "a")] == 1.0
        assert matrix[("b", "b")] == 1.0

    def test_symmetric_entries(self):
        matrix = spearman_matrix({"a": [1, 2, 3], "b": [3, 1, 2]})
        assert matrix[("a", "b")] == matrix[("b", "a")]

    def test_all_pairs_present(self):
        matrix = spearman_matrix({"a": [1, 2], "b": [2, 1], "c": [1, 1]})
        assert len(matrix) == 9
