"""Integration tests for the diff and export CLI subcommands."""

import csv

import pytest

from repro.cli import main
from repro.corpus.dataset import save_corpus


class TestDiffCommand:
    @pytest.fixture
    def two_files(self, tmp_path):
        old = tmp_path / "old.sql"
        new = tmp_path / "new.sql"
        old.write_text("CREATE TABLE users (id INT, email TEXT);")
        new.write_text("CREATE TABLE users (id INT, email TEXT, "
                       "name TEXT);\nCREATE TABLE posts (id INT);")
        return old, new

    def test_diff_output(self, two_files, capsys):
        old, new = two_files
        code = main(["diff", str(old), str(new)])
        assert code == 0
        out = capsys.readouterr().out
        assert "tables added:   posts" in out
        assert "affected attributes: 2" in out
        assert "injected" in out
        assert "born_with_table" in out

    def test_diff_rename_detection(self, tmp_path, capsys):
        old = tmp_path / "old.sql"
        new = tmp_path / "new.sql"
        old.write_text("CREATE TABLE user (id INT, email TEXT);")
        new.write_text("CREATE TABLE users (id INT, email TEXT);")
        code = main(["diff", str(old), str(new), "--detect-renames"])
        assert code == 0
        out = capsys.readouterr().out
        assert "user->users" in out
        assert "affected attributes: 0" in out

    def test_diff_missing_file(self, tmp_path, capsys):
        code = main(["diff", str(tmp_path / "a.sql"),
                     str(tmp_path / "b.sql")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExportCommand:
    def test_export_from_saved_corpus(self, tmp_path, capsys,
                                      small_corpus):
        corpus_path = tmp_path / "c.json"
        save_corpus(small_corpus, corpus_path)
        out_dir = tmp_path / "dataset"
        code = main(["export", str(out_dir),
                     "--corpus", str(corpus_path)])
        assert code == 0
        for name in ("measurements.csv", "heartbeats.csv",
                     "vectors.csv"):
            assert (out_dir / name).exists()
        with (out_dir / "measurements.csv").open(newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(small_corpus)
