"""Unit tests for the formal pattern definitions."""

import itertools

import pytest

from repro.labels.classes import (
    BirthTimingClass,
    IntervalBirthToTopClass,
    TopBandTimingClass,
)
from repro.patterns.definitions import (
    DEFINITIONS,
    UNBOUNDED,
    Variant,
    definition_of,
)
from repro.patterns.taxonomy import Pattern


class FakeLabeled:
    """Minimal stand-in exposing the four defining features."""

    def __init__(self, birth, top, interval, agm):
        self.birth_timing = birth
        self.top_band_timing = top
        self.interval_birth_to_top = interval
        self.active_growth_months = agm


def combos():
    """Every combination of the defining feature values, AGM in a
    representative set."""
    for birth, top, interval, agm in itertools.product(
            BirthTimingClass, TopBandTimingClass,
            IntervalBirthToTopClass, (0, 1, 2, 3, 4, 10)):
        yield FakeLabeled(birth, top, interval, agm)


class TestVariant:
    def test_violations_empty_on_match(self):
        variant = Variant(birth=frozenset({BirthTimingClass.V0}),
                          top=frozenset({TopBandTimingClass.V0}))
        fake = FakeLabeled(BirthTimingClass.V0, TopBandTimingClass.V0,
                           IntervalBirthToTopClass.ZERO, 0)
        assert variant.violations(fake) == ()
        assert variant.matches(fake)

    def test_violations_lists_each_failed_constraint(self):
        variant = Variant(birth=frozenset({BirthTimingClass.V0}),
                          top=frozenset({TopBandTimingClass.V0}),
                          interval=frozenset(
                              {IntervalBirthToTopClass.ZERO}),
                          agm_max=0)
        fake = FakeLabeled(BirthTimingClass.LATE, TopBandTimingClass.LATE,
                           IntervalBirthToTopClass.LONG, 7)
        assert set(variant.violations(fake)) == {
            "birth_timing", "top_band_timing", "interval_birth_to_top",
            "active_growth_months"}

    def test_interval_none_means_any(self):
        variant = Variant(birth=frozenset(BirthTimingClass),
                          top=frozenset(TopBandTimingClass),
                          interval=None, agm_max=UNBOUNDED)
        for fake in combos():
            assert variant.matches(fake)


class TestDefinitionRegions:
    def test_every_definition_has_a_matching_point(self):
        for definition in DEFINITIONS:
            assert any(definition.matches(fake) for fake in combos()), \
                f"{definition.pattern} matches nothing"

    def test_definitions_pairwise_disjoint(self):
        """No feature combination satisfies two definitions — the formal
        disjointedness claim of §5.3."""
        for fake in combos():
            matching = [d.pattern for d in DEFINITIONS if d.matches(fake)]
            assert len(matching) <= 1, (
                f"overlap at birth={fake.birth_timing} "
                f"top={fake.top_band_timing} "
                f"interval={fake.interval_birth_to_top} "
                f"agm={fake.active_growth_months}: {matching}")

    def test_space_not_fully_covered(self):
        """§5.5: the taxonomy intentionally leaves parts of the space
        unpopulated (completeness is argued, not forced)."""
        unmatched = [fake for fake in combos()
                     if not any(d.matches(fake) for d in DEFINITIONS)]
        assert unmatched

    def test_impossible_combinations_unmatched(self):
        # Late birth with early top band is temporally impossible; no
        # definition should claim it.
        fake = FakeLabeled(BirthTimingClass.LATE, TopBandTimingClass.EARLY,
                           IntervalBirthToTopClass.ZERO, 0)
        assert not any(d.matches(fake) for d in DEFINITIONS)


class TestSpecificDefinitions:
    def test_flatliner_region(self):
        definition = definition_of(Pattern.FLATLINER)
        assert definition.matches(FakeLabeled(
            BirthTimingClass.V0, TopBandTimingClass.V0,
            IntervalBirthToTopClass.ZERO, 0))
        assert not definition.matches(FakeLabeled(
            BirthTimingClass.V0, TopBandTimingClass.EARLY,
            IntervalBirthToTopClass.SOON, 0))

    def test_radical_sign_takes_v0_and_early_birth(self):
        definition = definition_of(Pattern.RADICAL_SIGN)
        for birth in (BirthTimingClass.V0, BirthTimingClass.EARLY):
            assert definition.matches(FakeLabeled(
                birth, TopBandTimingClass.EARLY,
                IntervalBirthToTopClass.SOON, 0))

    def test_quantum_vs_regular_split_on_agm(self):
        quantum = definition_of(Pattern.QUANTUM_STEPS)
        regular = definition_of(Pattern.REGULARLY_CURATED)
        low = FakeLabeled(BirthTimingClass.EARLY,
                          TopBandTimingClass.MIDDLE,
                          IntervalBirthToTopClass.LONG, 3)
        high = FakeLabeled(BirthTimingClass.EARLY,
                           TopBandTimingClass.MIDDLE,
                           IntervalBirthToTopClass.LONG, 4)
        assert quantum.matches(low) and not regular.matches(low)
        assert regular.matches(high) and not quantum.matches(high)

    def test_siesta_needs_very_long_interval(self):
        definition = definition_of(Pattern.SIESTA)
        assert definition.matches(FakeLabeled(
            BirthTimingClass.EARLY, TopBandTimingClass.LATE,
            IntervalBirthToTopClass.VERY_LONG, 2))
        assert not definition.matches(FakeLabeled(
            BirthTimingClass.EARLY, TopBandTimingClass.LATE,
            IntervalBirthToTopClass.LONG, 2))

    def test_smoking_funnel_vs_sigmoid(self):
        funnel = definition_of(Pattern.SMOKING_FUNNEL)
        sigmoid = definition_of(Pattern.SIGMOID)
        dense = FakeLabeled(BirthTimingClass.MIDDLE,
                            TopBandTimingClass.MIDDLE,
                            IntervalBirthToTopClass.FAIR, 5)
        frozen = FakeLabeled(BirthTimingClass.MIDDLE,
                             TopBandTimingClass.MIDDLE,
                             IntervalBirthToTopClass.ZERO, 0)
        assert funnel.matches(dense) and not sigmoid.matches(dense)
        assert sigmoid.matches(frozen) and not funnel.matches(frozen)

    def test_definition_of_unclassified_raises(self):
        with pytest.raises(KeyError):
            definition_of(Pattern.UNCLASSIFIED)

    def test_min_violations_picks_best_variant(self):
        definition = definition_of(Pattern.QUANTUM_STEPS)
        # One constraint away from either variant: exactly one violation
        # must be reported (not the union across variants).
        fake = FakeLabeled(BirthTimingClass.MIDDLE,
                           TopBandTimingClass.MIDDLE,
                           IntervalBirthToTopClass.FAIR, 2)
        assert len(definition.min_violations(fake)) == 1
