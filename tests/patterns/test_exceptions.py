"""Unit tests for Table-2 exception accounting."""

from repro.labels.quantization import label_profile
from repro.metrics.profile import ProjectProfile
from repro.patterns.classifier import ClassificationResult
from repro.patterns.exceptions import (
    count_strict_matches,
    exception_report,
)
from repro.patterns.taxonomy import (
    PAPER_EXCEPTIONS,
    Pattern,
    REAL_PATTERNS,
)


def records_of(corpus):
    for project in corpus:
        labeled = label_profile(
            ProjectProfile.from_history(project.history))
        yield labeled, ClassificationResult(
            pattern=project.intended_pattern,
            is_exception=project.is_exception)


class TestExceptionReport:
    def test_population_matches_corpus(self, small_corpus):
        report = exception_report(records_of(small_corpus))
        assert report.total == len(small_corpus)
        assert report.unclassified == 0

    def test_clean_corpus_has_no_exceptions(self, small_corpus):
        report = exception_report(records_of(small_corpus))
        assert report.total_exceptions == 0

    def test_full_corpus_reproduces_paper_exceptions(self, full_corpus):
        report = exception_report(records_of(full_corpus))
        by_pattern = {row[0]: row for row in report.rows}
        for pattern in REAL_PATTERNS:
            _, population, exceptions, overlaps = by_pattern[pattern]
            assert exceptions == PAPER_EXCEPTIONS[pattern], pattern
            assert overlaps == 0

    def test_unclassified_counted(self, small_corpus):
        pairs = list(records_of(small_corpus))
        labeled = pairs[0][0]
        pairs.append((labeled, ClassificationResult(
            pattern=Pattern.UNCLASSIFIED)))
        report = exception_report(pairs)
        assert report.unclassified == 1


class TestStrictMatchCount:
    def test_at_most_one_definition_matches(self, small_corpus):
        for labeled, _result in records_of(small_corpus):
            assert count_strict_matches(labeled) == 1
