"""Unit tests for the pattern classifier (strict + tolerant)."""

from repro.labels.quantization import label_profile
from repro.metrics.profile import ProjectProfile
from repro.patterns.classifier import classify, classify_with_tolerance
from repro.patterns.taxonomy import Pattern
from tests.conftest import make_history
from datetime import datetime


def history_profile(monthly_ddl, start=None, end=None):
    history = make_history(monthly_ddl, project_start=start,
                           project_end=end)
    return label_profile(ProjectProfile.from_history(history))


BASE = "CREATE TABLE users (id INT PRIMARY KEY, email TEXT);"


class TestStrictOnRealHistories:
    def test_flatliner(self):
        labeled = history_profile(
            [BASE], start=datetime(2020, 1, 1), end=datetime(2022, 1, 1))
        assert classify(labeled) is Pattern.FLATLINER

    def test_radical_sign(self):
        grow = BASE + " CREATE TABLE a (x INT, y INT);"
        labeled = history_profile(
            [BASE, grow],
            start=datetime(2020, 1, 1), end=datetime(2025, 1, 1))
        assert classify(labeled) is Pattern.RADICAL_SIGN

    def test_late_riser(self):
        # Commit lands 2021-12 (start_month=23 from the 2020 base);
        # project spans 2018-01 .. 2022-06 -> birth at ~89 % of life.
        history = make_history(
            [BASE], start_month=23,
            project_start=datetime(2018, 1, 1),
            project_end=datetime(2022, 6, 30))
        labeled = label_profile(ProjectProfile.from_history(history))
        assert classify(labeled) is Pattern.LATE_RISER

    def test_sigmoid(self):
        history = make_history(
            [BASE], start_month=12,
            project_start=datetime(2019, 1, 1),
            project_end=datetime(2021, 12, 31))
        labeled = label_profile(ProjectProfile.from_history(history))
        assert classify(labeled) is Pattern.SIGMOID


class TestStrictOnCorpus:
    def test_small_corpus_all_strictly_classified(self, small_corpus):
        for project in small_corpus:
            labeled = label_profile(
                ProjectProfile.from_history(project.history))
            assert classify(labeled) is project.intended_pattern, \
                project.name


class TestTolerant:
    def test_exact_match_not_exception(self, small_corpus):
        project = small_corpus.projects[0]
        labeled = label_profile(
            ProjectProfile.from_history(project.history))
        result = classify_with_tolerance(labeled)
        assert result.pattern is project.intended_pattern
        assert not result.is_exception
        assert result.violations == ()

    def test_near_miss_assigned_with_exception_flag(self, full_corpus):
        from repro.patterns.classifier import classify
        exceptional = [p for p in full_corpus if p.is_exception]
        assert exceptional
        for project in exceptional:
            labeled = label_profile(
                ProjectProfile.from_history(project.history))
            if classify(labeled) is not Pattern.UNCLASSIFIED:
                continue  # the paper's RC-overlap Siestas match strictly
            result = classify_with_tolerance(labeled)
            assert result.pattern is not Pattern.UNCLASSIFIED
            assert result.is_exception
            assert len(result.violations) == 1

    def test_hopeless_input_stays_unclassified(self):
        # Construct labels violating >1 constraint of every definition:
        # late birth + middle top is temporally impossible and far from
        # everything.
        class Fake:
            from repro.labels.classes import (
                BirthTimingClass as B,
                TopBandTimingClass as T,
                IntervalBirthToTopClass as I,
            )
            birth_timing = B.LATE
            top_band_timing = T.V0
            interval_birth_to_top = I.VERY_LONG
            active_growth_months = 50

        result = classify_with_tolerance(Fake(), max_violations=1)
        assert result.pattern is Pattern.UNCLASSIFIED

    def test_max_violations_widens_net(self):
        class Fake:
            from repro.labels.classes import (
                BirthTimingClass as B,
                TopBandTimingClass as T,
                IntervalBirthToTopClass as I,
            )
            birth_timing = B.LATE
            top_band_timing = T.V0
            interval_birth_to_top = I.VERY_LONG
            active_growth_months = 50

        relaxed = classify_with_tolerance(Fake(), max_violations=4)
        assert relaxed.pattern is not Pattern.UNCLASSIFIED
        assert relaxed.is_exception
