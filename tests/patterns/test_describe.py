"""Unit tests for pattern descriptions."""

import pytest

from repro.patterns.describe import describe, describe_all
from repro.patterns.taxonomy import (
    Family,
    Pattern,
    REAL_PATTERNS,
    family_of,
)


class TestDescribe:
    def test_every_real_pattern_described(self):
        descriptions = describe_all()
        assert {d.pattern for d in descriptions} == set(REAL_PATTERNS)

    def test_fields_non_empty(self):
        for description in describe_all():
            assert description.shape
            assert description.meaning
            assert description.advice
            assert description.family is family_of(description.pattern)

    def test_unclassified_raises(self):
        with pytest.raises(KeyError):
            describe(Pattern.UNCLASSIFIED)

    def test_flatliner_narrative(self):
        description = describe(Pattern.FLATLINER)
        assert "flat" in description.shape
        assert description.family is Family.BE_QUICK_OR_BE_DEAD

    def test_descriptions_distinct(self):
        shapes = [d.shape for d in describe_all()]
        assert len(set(shapes)) == len(shapes)
