"""CLI fault-tolerance flags, exit codes and the env fault plan."""

import pytest

from repro.cli import EXIT_PARTIAL, main
from repro.corpus.dataset import save_corpus


@pytest.fixture
def corpus_path(tmp_path, small_corpus):
    path = tmp_path / "corpus.json"
    save_corpus(small_corpus, path)
    return path


def run_study(corpus_path, *extra):
    return main(["study", "--corpus", str(corpus_path), *extra])


class TestExitCodes:
    def test_clean_run_is_zero(self, corpus_path, capsys):
        assert run_study(corpus_path, "--on-error", "skip") == 0
        assert "skipped" not in capsys.readouterr().err

    def test_skip_with_faults_is_partial(self, corpus_path, capsys):
        code = run_study(corpus_path, "--on-error", "skip",
                         "--fault-plan", "parse@flatliner-01")
        assert code == EXIT_PARTIAL
        err = capsys.readouterr().err
        assert "1 project(s) skipped" in err
        assert "flatliner-01 [records] ParseError" in err

    def test_fail_with_faults_is_error(self, corpus_path, capsys):
        code = run_study(corpus_path,
                         "--fault-plan", "parse@flatliner-01")
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_retry_heals_to_zero(self, corpus_path, capsys):
        clean = run_study(corpus_path)
        clean_out = capsys.readouterr().out
        code = run_study(corpus_path, "--on-error", "retry",
                         "--max-retries", "2",
                         "--fault-plan", "source@flatliner-01*2")
        assert clean == 0 and code == 0
        # The healed run prints byte-identical study output.
        assert capsys.readouterr().out == clean_out

    def test_retry_budget_zero_skips(self, corpus_path):
        code = run_study(corpus_path, "--on-error", "retry",
                         "--max-retries", "0",
                         "--fault-plan", "source@flatliner-01")
        assert code == EXIT_PARTIAL

    def test_bad_fault_plan_is_usage_error(self, corpus_path, capsys):
        code = run_study(corpus_path, "--fault-plan", "meteor@x")
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestEnvFaultPlan:
    def test_env_plan_applies(self, corpus_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "parse@flatliner-01")
        code = run_study(corpus_path, "--on-error", "skip")
        assert code == EXIT_PARTIAL
        assert "flatliner-01" in capsys.readouterr().err

    def test_flag_overrides_env(self, corpus_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "parse@~1")
        code = run_study(corpus_path, "--on-error", "skip",
                         "--fault-plan", "parse@flatliner-01")
        assert code == EXIT_PARTIAL


class TestTimingsFaultColumn:
    def test_faults_column_in_timings(self, corpus_path, capsys):
        code = run_study(corpus_path, "--on-error", "skip",
                         "--fault-plan", "parse@flatliner-01",
                         "--timings")
        assert code == EXIT_PARTIAL
        err = capsys.readouterr().err
        assert "faults" in err
        assert "1 fail / 0 retry" in err
