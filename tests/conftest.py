"""Shared fixtures for the test suite."""

from __future__ import annotations

from datetime import datetime

import pytest

from repro.corpus.generator import generate_corpus
from repro.history.commit import Commit
from repro.history.repository import SchemaHistory
from repro.patterns.taxonomy import Pattern

#: A compact population (one-ish project per pattern) for fast tests.
SMALL_POPULATION = {
    Pattern.FLATLINER: 2,
    Pattern.RADICAL_SIGN: 3,
    Pattern.SIGMOID: 2,
    Pattern.LATE_RISER: 2,
    Pattern.QUANTUM_STEPS: 2,
    Pattern.REGULARLY_CURATED: 2,
    Pattern.SMOKING_FUNNEL: 1,
    Pattern.SIESTA: 2,
}


@pytest.fixture(scope="session")
def small_corpus():
    """A small deterministic corpus without exception projects."""
    return generate_corpus(seed=99, population=SMALL_POPULATION,
                           with_exceptions=False)


@pytest.fixture(scope="session")
def full_corpus():
    """The full paper-sized 151-project corpus (session-cached)."""
    return generate_corpus(seed=20250325)


@pytest.fixture(scope="session")
def full_study():
    """The complete study results on the full corpus."""
    from repro.study.pipeline import records_from_corpus, run_study
    corpus = generate_corpus(seed=20250325)
    return run_study(records_from_corpus(corpus))


def make_history(ddl_texts: list[str], project_start: datetime | None = None,
                 project_end: datetime | None = None,
                 start_month: int = 0,
                 months_apart: int = 1,
                 name: str = "test-project") -> SchemaHistory:
    """Build a history with one commit per DDL text, months apart."""
    commits = []
    for index, ddl in enumerate(ddl_texts):
        month_offset = start_month + index * months_apart
        year = 2020 + month_offset // 12
        month = month_offset % 12 + 1
        commits.append(Commit(sha=f"c{index}",
                              timestamp=datetime(year, month, 15),
                              ddl_text=ddl))
    return SchemaHistory(name, commits, project_start=project_start,
                         project_end=project_end)


@pytest.fixture
def simple_history() -> SchemaHistory:
    """A 3-commit, 24-month history: birth at month 0, small growth."""
    ddl1 = "CREATE TABLE users (id INT PRIMARY KEY, email VARCHAR(100));"
    ddl2 = ddl1 + ("\nCREATE TABLE orders (id INT PRIMARY KEY, "
                   "user_id INT REFERENCES users (id), total "
                   "DECIMAL(8,2));")
    ddl3 = ddl2.replace("VARCHAR(100)", "TEXT")
    return make_history([ddl1, ddl2, ddl3],
                        project_start=datetime(2020, 1, 1),
                        project_end=datetime(2021, 12, 31))
