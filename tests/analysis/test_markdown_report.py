"""Unit tests for the Markdown study report."""

import pytest

from repro.report.markdown import markdown_report
from repro.study.pipeline import records_from_corpus, run_study


@pytest.fixture(scope="module")
def results(small_corpus):
    return run_study(records_from_corpus(small_corpus))


class TestMarkdownReport:
    def test_all_sections_present(self, results):
        report = markdown_report(results)
        for heading in ("Table 1", "Table 2", "Figure 2", "Figure 4",
                        "Figure 5", "Figure 6", "Figure 7",
                        "Section 3.4", "Section 5.2", "Section 6.1",
                        "Section 6.3", "Summary"):
            assert heading in report, heading

    def test_custom_title(self, results):
        report = markdown_report(results, title="My Study")
        assert report.startswith("# My Study")

    def test_summary_mentions_counts(self, results):
        report = markdown_report(results)
        assert f"**{results.total} projects**" in report

    def test_code_fences_balanced(self, results):
        report = markdown_report(results)
        assert report.count("```") % 2 == 0
        assert report.count("```text") == 11

    def test_cli_report_command(self, small_corpus, tmp_path, capsys):
        from repro.cli import main
        from repro.corpus.dataset import save_corpus
        corpus_path = tmp_path / "c.json"
        save_corpus(small_corpus, corpus_path)
        out = tmp_path / "study.md"
        code = main(["report", str(out), "--corpus", str(corpus_path)])
        assert code == 0
        assert out.read_text().startswith("# Schema-evolution")
