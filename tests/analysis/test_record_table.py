"""Differential tests: columnar RecordTable kernels vs per-record oracles.

The fused backend must be *byte-identical* to the per-record analysis
implementations — same floats, same dict insertion order, same rendered
report. Each kernel is checked against its oracle on the small corpus,
and the pack itself round-trips (``pack -> unpack -> pack``) under
hypothesis-driven record subsets.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import report
from repro.analysis.activity_relation import compute_activity_relation
from repro.analysis.change_mix import compute_change_mix
from repro.analysis.coverage import compute_coverage
from repro.analysis.normality import compute_normality
from repro.analysis.prediction import compute_prediction
from repro.analysis.records import MEASURE_NAMES, measures_of
from repro.analysis.stats_tables import (
    compute_section34_stats,
    compute_table1,
)
from repro.analysis.table import (
    N_LABELS,
    N_MEASURES,
    PackedRecord,
    RecordTable,
    pack_counters,
    pack_record,
)
from repro.diff.changes import N_KINDS
from repro.errors import AnalysisError
from repro.mining.correlation import spearman_matrix
from repro.study.pipeline import records_from_corpus, run_study


@pytest.fixture(scope="module")
def records(small_corpus):
    return records_from_corpus(small_corpus)


@pytest.fixture(scope="module")
def table(records):
    return RecordTable.from_records(records)


class TestPack:
    def test_row_shape(self, records):
        row = pack_record(records[0])
        assert isinstance(row, PackedRecord)
        assert row.name == records[0].name
        assert len(row.labels) == N_LABELS
        assert len(row.measures) == N_MEASURES
        assert len(row.kind_counts) == N_KINDS

    def test_table_columns_align(self, records, table):
        assert len(table) == len(records)
        assert len(table.kind_counts) == len(records) * N_KINDS
        assert all(len(col) == len(records) for col in table.labels)
        assert all(len(col) == len(records) for col in table.measures)

    def test_measure_map_matches_measures_of(self, records, table):
        theirs = measures_of(records)
        ours = table.measure_map()
        assert list(ours) == list(MEASURE_NAMES)
        for name in MEASURE_NAMES:
            assert list(ours[name]) == list(theirs[name])

    def test_pack_counter_ticks(self, records):
        before = pack_counters()[0]
        pack_record(records[0])
        assert pack_counters()[0] == before + 1

    def test_empty_table(self):
        empty = RecordTable.from_rows([])
        assert len(empty) == 0
        assert empty.unpack() == []


class TestRoundTrip:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_pack_unpack_pack(self, records, data):
        indexes = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(records) - 1),
            max_size=len(records)))
        rows = [pack_record(records[i]) for i in indexes]
        table = RecordTable.from_rows(rows)
        assert table.unpack() == rows
        assert RecordTable.from_rows(table.unpack()) == table

    def test_full_corpus_round_trip(self, records, table):
        rows = [pack_record(r) for r in records]
        assert table.unpack() == rows
        assert RecordTable.from_rows(rows) == table
        assert [row.name for row in rows] == list(table.names)


class TestKernelsMatchOracles:
    """Every fused stage result equals its per-record oracle."""

    @pytest.fixture(scope="class")
    def fused(self, records):
        return run_study(records)

    @pytest.fixture(scope="class")
    def oracle(self, records):
        return run_study(records, columnar=False)

    def test_table1(self, fused, oracle, records):
        assert fused.table1 == oracle.table1 == compute_table1(records)
        # insertion order of the nested dicts must match exactly
        for key in fused.table1.rows:
            assert list(fused.table1.rows[key]) \
                == list(oracle.table1.rows[key])

    def test_stats34(self, fused, oracle, records):
        assert fused.stats34 == oracle.stats34 \
            == compute_section34_stats(records)

    def test_table2(self, fused, oracle):
        assert fused.table2 == oracle.table2

    def test_strict_agreement(self, fused, oracle):
        assert fused.strict_agreement == oracle.strict_agreement

    def test_correlations(self, fused, oracle, records):
        theirs = spearman_matrix(measures_of(records))
        assert list(fused.correlations) == list(theirs)
        for pair, rho in theirs.items():
            ours = fused.correlations[pair]
            assert ours == rho or (ours != ours and rho != rho), pair
        assert list(fused.correlations) == list(oracle.correlations)

    def test_coverage(self, fused, oracle, records):
        assert fused.coverage == oracle.coverage \
            == compute_coverage(records)

    def test_prediction(self, fused, oracle, records):
        assert fused.prediction == oracle.prediction \
            == compute_prediction(records)

    def test_activity(self, fused, oracle, records):
        assert fused.activity == oracle.activity \
            == compute_activity_relation(records)

    def test_change_mix(self, fused, oracle, records):
        assert fused.change_mix == oracle.change_mix \
            == compute_change_mix(records)

    def test_normality(self, fused, oracle, records):
        assert fused.normality == oracle.normality \
            == compute_normality(records)

    def test_centroids(self, fused, oracle):
        assert fused.centroids == oracle.centroids

    def test_tree(self, fused, oracle):
        assert report.render_tree(fused) == report.render_tree(oracle)
        assert fused.tree_misclassified == oracle.tree_misclassified

    def test_rendered_report_byte_identical(self, fused, oracle):
        sections = (report.render_table1, report.render_table2,
                    report.render_correlations, report.render_fig4_overview,
                    report.render_tree, report.render_coverage,
                    report.render_prediction, report.render_section34,
                    report.render_section52, report.render_section61,
                    report.render_section63)
        for render in sections:
            assert render(fused) == render(oracle), render.__name__


class TestEdges:
    def test_empty_corpus_raises(self):
        from repro.engine.study_plan import _stage_core_stats
        with pytest.raises(AnalysisError):
            _stage_core_stats(RecordTable.from_rows([]))

    def test_run_study_zero_records(self):
        with pytest.raises(AnalysisError):
            run_study([])
