"""Unit tests for the table-level rigidity analysis."""

import pytest

from repro.analysis.table_level import compute_table_level
from repro.errors import AnalysisError
from repro.study.pipeline import records_from_corpus


@pytest.fixture(scope="module")
def records(small_corpus):
    return records_from_corpus(small_corpus)


class TestTableLevel:
    def test_basic_aggregates(self, records):
        result = compute_table_level(records)
        assert result.total_lives > 0
        assert 0.0 <= result.rigid_share <= 1.0
        assert 0.0 <= result.alive_share <= 1.0
        assert len(result.rigidity_by_birth_quarter) == 4
        assert all(0.0 <= q <= 1.0
                   for q in result.rigidity_by_birth_quarter)

    def test_table_rigidity_trait(self, records):
        # The corpus is expansion-biased with whole-table granule change,
        # so most table lives never change after birth.
        result = compute_table_level(records)
        assert result.rigid_share > 0.5

    def test_most_tables_survive(self, records):
        result = compute_table_level(records)
        assert result.alive_share > 0.6

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            compute_table_level([])

    def test_history_less_profiles_raise(self, records):
        import dataclasses
        record = records[0]
        bare_profile = dataclasses.replace(record.profile, history=None)
        bare = dataclasses.replace(record, labeled=dataclasses.replace(
            record.labeled, profile=bare_profile))
        with pytest.raises(AnalysisError):
            compute_table_level([bare])
