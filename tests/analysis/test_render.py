"""Unit tests for the paper-artifact text renderers."""

import pytest

from repro import report
from repro.patterns.taxonomy import PAPER_POPULATION
from repro.study.pipeline import records_from_corpus, run_study


@pytest.fixture(scope="module")
def results(small_corpus):
    return run_study(records_from_corpus(small_corpus))


class TestTableRenderers:
    def test_table1_lists_every_metric(self, results):
        out = report.render_table1(results)
        for metric in ("Volume of Birth", "Time Point of Birth",
                       "Top Band", "Birth-To-TopBand", "TopBand-To-End",
                       "%Growth", "%PUP"):
            assert metric in out

    def test_table1_counts_total(self, results):
        out = report.render_table1(results)
        assert f"n={results.total}" in out

    def test_table2_has_all_patterns(self, results):
        out = report.render_table2(results)
        for pattern in PAPER_POPULATION:
            assert pattern.value in out
        assert "(unclassified)" in out

    def test_correlations_symmetric_header(self, results):
        out = report.render_correlations(results)
        assert "+1.00" in out  # the diagonal
        assert "BirthVolume_pctTotal" in out

    def test_fig4_groups_by_family(self, results):
        out = report.render_fig4_overview(results)
        assert "Be Quick or Be Dead" in out
        assert "Stairway to Heaven" in out

    def test_tree_reports_misclassified(self, results):
        out = report.render_tree(results)
        assert "misclassified:" in out
        assert "[" in out  # rendered tree nodes

    def test_coverage_cell_listing(self, results):
        out = report.render_coverage(results)
        assert "cells populated" in out

    def test_prediction_has_buckets(self, results):
        out = report.render_prediction(results)
        for bucket in ("Born M0", "Born [M1..M6]", "Born [M7..M12]",
                       "Not born till M12"):
            assert bucket in out
        assert "TOTAL" in out

    def test_section34_statistics(self, results):
        out = report.render_section34(results)
        assert "born at V0" in out
        assert "Shapiro-Wilk" in out

    def test_section52_mdc(self, results):
        out = report.render_section52(results)
        assert "MDC" in out

    def test_section61_medians(self, results):
        out = report.render_section61(results)
        assert "med post-birth" in out

    def test_section63_mixture(self, results):
        out = report.render_section63(results)
        assert "expansion" in out
        assert "monothematic" in out

    def test_all_renderers_produce_nonempty_text(self, results):
        renderers = [
            report.render_table1, report.render_table2,
            report.render_correlations, report.render_fig4_overview,
            report.render_tree, report.render_coverage,
            report.render_prediction, report.render_section34,
            report.render_section52, report.render_section61,
            report.render_section63,
        ]
        for renderer in renderers:
            out = renderer(results)
            assert isinstance(out, str)
            assert len(out.splitlines()) >= 3, renderer.__name__
