"""Unit tests for the analysis modules on the small corpus."""

import pytest

from repro.analysis.activity_relation import compute_activity_relation
from repro.analysis.change_mix import compute_change_mix
from repro.analysis.coverage import agm_bucket, compute_coverage
from repro.analysis.normality import compute_normality
from repro.analysis.prediction import birth_bucket, compute_prediction
from repro.analysis.records import MEASURE_NAMES, measures_of
from repro.analysis.stats_tables import (
    compute_section34_stats,
    compute_table1,
)
from repro.errors import AnalysisError
from repro.patterns.taxonomy import Pattern
from repro.study.pipeline import records_from_corpus


@pytest.fixture(scope="module")
def records(small_corpus):
    return records_from_corpus(small_corpus)


class TestRecords:
    def test_measures_extracted(self, records):
        measures = measures_of(records)
        assert set(measures) == set(MEASURE_NAMES)
        assert all(len(v) == len(records) for v in measures.values())

    def test_measures_in_range(self, records):
        measures = measures_of(records)
        for name in MEASURE_NAMES:
            if name == "ActiveGrowthMonths":
                continue
            assert all(0.0 <= v <= 1.0 for v in measures[name]), name


class TestTable1:
    def test_rows_sum_to_total(self, records):
        table1 = compute_table1(records)
        for row, counts in table1.rows.items():
            assert sum(counts.values()) == table1.total, row

    def test_count_accessor(self, records):
        table1 = compute_table1(records)
        key = "Time Point of Birth (%PUP)"
        assert table1.count(key, "v0") >= 2  # flatliners are V0-born

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            compute_table1([])


class TestSection34:
    def test_consistency(self, records):
        stats = compute_section34_stats(records)
        assert stats.total == len(records)
        assert stats.born_at_v0 <= stats.born_first_25pct
        assert stats.born_first_10pct <= stats.born_first_25pct
        assert stats.zero_active_growth \
            <= stats.at_most_one_active_growth
        assert stats.interval_birth_top_zero \
            <= stats.interval_birth_top_under_10pct
        assert 0.0 <= stats.vault_share <= 1.0
        assert stats.full_activity_at_birth \
            <= stats.high_activity_at_birth

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            compute_section34_stats([])


class TestCoverage:
    def test_agm_bucket(self):
        assert agm_bucket(0) == "0"
        assert agm_bucket(3) == "1-3"
        assert agm_bucket(4) == ">3"

    def test_cells_cover_all_records(self, records):
        coverage = compute_coverage(records)
        counted = sum(n for patterns in coverage.cells.values()
                      for n in patterns.values())
        assert counted == len(records)

    def test_fraction_bounded(self, records):
        coverage = compute_coverage(records)
        assert 0 < coverage.coverage_fraction < 1

    def test_dominant_pattern(self, records):
        coverage = compute_coverage(records)
        for cell in coverage.cells:
            assert coverage.dominant_pattern(cell) in Pattern


class TestPrediction:
    def test_birth_bucket(self):
        assert birth_bucket(0) == 0
        assert birth_bucket(6) == 1
        assert birth_bucket(7) == 2
        assert birth_bucket(12) == 2
        assert birth_bucket(13) == 3

    def test_totals_consistent(self, records):
        prediction = compute_prediction(records)
        assert sum(prediction.bucket_totals) == prediction.total
        for pattern, counts in prediction.counts.items():
            assert sum(counts) == sum(
                1 for r in records if r.pattern is pattern)

    def test_probabilities_sum_to_one_per_bucket(self, records):
        prediction = compute_prediction(records)
        for bucket, total in enumerate(prediction.bucket_totals):
            if total == 0:
                continue
            mass = sum(prediction.probability(p, bucket)
                       for p in prediction.counts)
            assert mass == pytest.approx(1.0)

    def test_empty_bucket_probability_zero(self, records):
        prediction = compute_prediction(records)
        for bucket, total in enumerate(prediction.bucket_totals):
            if total == 0:
                assert prediction.probability(
                    Pattern.FLATLINER, bucket) == 0.0

    def test_birth_distribution_sums_to_one(self, records):
        assert sum(compute_prediction(records).birth_distribution()) \
            == pytest.approx(1.0)


class TestActivityRelation:
    def test_every_pattern_row_present(self, records):
        result = compute_activity_relation(records)
        patterns = {row.pattern for row in result.rows}
        assert patterns == {r.pattern for r in records}

    def test_flatliner_post_birth_zero(self, records):
        result = compute_activity_relation(records)
        row = result.row(Pattern.FLATLINER)
        assert row.median_post_birth == 0

    def test_regular_curation_dwarfs_flatliner(self, records):
        result = compute_activity_relation(records)
        regular = result.row(Pattern.REGULARLY_CURATED)
        flat = result.row(Pattern.FLATLINER)
        assert regular.median_post_birth > 10 * max(
            flat.median_post_birth, 1)

    def test_missing_pattern_returns_none(self, records):
        result = compute_activity_relation(records)
        assert result.row(Pattern.UNCLASSIFIED) is None


class TestChangeMix:
    def test_overall_expansion_dominant(self, records):
        mix = compute_change_mix(records)
        assert mix.overall_expansion_fraction > 0.5

    def test_table_granule_dominant(self, records):
        mix = compute_change_mix(records)
        assert mix.overall_table_granule_fraction > 0.5

    def test_flatliners_monothematic(self, records):
        mix = compute_change_mix(records)
        row = mix.row(Pattern.FLATLINER)
        assert row.monothematic_projects == row.count

    def test_kind_totals_sum(self, records):
        mix = compute_change_mix(records)
        for row in mix.rows:
            assert sum(row.kind_totals.values()) >= 0


class TestNormality:
    def test_rows_for_every_measure(self, records):
        result = compute_normality(records)
        assert [r.measure for r in result.rows] == list(MEASURE_NAMES)

    def test_histograms_count_everything(self, records):
        result = compute_normality(records)
        for row in result.rows:
            assert sum(row.histogram) == len(records)

    def test_too_few_raises(self, records):
        with pytest.raises(AnalysisError):
            compute_normality(records[:2])
