"""Unit tests for the CSV dataset export."""

import csv

import pytest

from repro.report.export import (
    export_dataset,
    export_heartbeats,
    export_measurements,
    export_vectors,
)
from repro.study.pipeline import records_from_corpus


@pytest.fixture(scope="module")
def records(small_corpus):
    return records_from_corpus(small_corpus)


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


class TestMeasurements:
    def test_one_row_per_project(self, records, tmp_path):
        path = tmp_path / "m.csv"
        export_measurements(records, path)
        rows = read_csv(path)
        assert len(rows) == len(records)
        assert {r["project"] for r in rows} == {r.name for r in records}

    def test_columns_complete(self, records, tmp_path):
        path = tmp_path / "m.csv"
        export_measurements(records, path)
        row = read_csv(path)[0]
        for column in ("pattern", "pup_months", "birth_month",
                       "total_activity", "label_birth_timing"):
            assert column in row

    def test_values_roundtrip(self, records, tmp_path):
        path = tmp_path / "m.csv"
        export_measurements(records, path)
        rows = {r["project"]: r for r in read_csv(path)}
        for record in records:
            row = rows[record.name]
            assert int(row["pup_months"]) == record.profile.pup_months
            assert int(row["total_activity"]) \
                == record.profile.total_activity
            assert row["pattern"] == record.pattern.value


class TestHeartbeats:
    def test_long_format_rows(self, records, tmp_path):
        path = tmp_path / "h.csv"
        export_heartbeats(records, path)
        rows = read_csv(path)
        expected = sum(r.profile.pup_months for r in records)
        assert len(rows) == expected

    def test_cumulative_ends_at_one(self, records, tmp_path):
        path = tmp_path / "h.csv"
        export_heartbeats(records, path)
        rows = read_csv(path)
        last_by_project = {}
        for row in rows:
            last_by_project[row["project"]] = row
        for row in last_by_project.values():
            assert float(row["cumulative_fraction"]) \
                == pytest.approx(1.0)


class TestVectors:
    def test_vector_width(self, records, tmp_path):
        path = tmp_path / "v.csv"
        export_vectors(records, path)
        rows = read_csv(path)
        assert len(rows) == len(records)
        vector_columns = [c for c in rows[0] if c.startswith("t")]
        assert len(vector_columns) == 20

    def test_values_monotone(self, records, tmp_path):
        path = tmp_path / "v.csv"
        export_vectors(records, path)
        for row in read_csv(path):
            values = [float(row[f"t{5 * i:02d}"]) for i in range(20)]
            assert all(a <= b + 1e-9
                       for a, b in zip(values, values[1:]))


class TestDataset:
    def test_writes_all_three(self, records, tmp_path):
        paths = export_dataset(records, tmp_path / "out")
        assert len(paths) == 3
        for path in paths:
            assert path.exists()
            assert path.stat().st_size > 0
