"""Unit tests for family-level cohesion analysis."""

import pytest

from repro.analysis.families import compute_family_cohesion
from repro.errors import AnalysisError
from repro.patterns.taxonomy import Family
from repro.study.pipeline import records_from_corpus


@pytest.fixture(scope="module")
def records(small_corpus):
    return records_from_corpus(small_corpus)


class TestFamilyCohesion:
    def test_three_families_present(self, records):
        result = compute_family_cohesion(records)
        assert set(result.sizes) == {f.value for f in Family}

    def test_sizes_sum_to_corpus(self, records):
        result = compute_family_cohesion(records)
        assert sum(result.sizes.values()) == len(records)

    def test_families_distinct(self, records):
        result = compute_family_cohesion(records)
        assert result.families_distinct
        assert result.min_between_gap > 0.0

    def test_mdc_bounded(self, records):
        result = compute_family_cohesion(records)
        assert 0.0 <= result.max_within_mdc <= 2.2

    def test_single_family_raises(self, records):
        from repro.patterns.taxonomy import Pattern
        only_quick = [r for r in records
                      if r.pattern in (Pattern.FLATLINER,
                                       Pattern.RADICAL_SIGN)]
        with pytest.raises(AnalysisError):
            compute_family_cohesion(only_quick)
