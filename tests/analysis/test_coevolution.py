"""Unit tests for the joint schema/source co-evolution measures."""

import dataclasses
import math

import pytest

from repro.analysis.coevolution import compute_coevolution
from repro.errors import AnalysisError
from repro.study.pipeline import records_from_corpus


@pytest.fixture(scope="module")
def records(small_corpus):
    return records_from_corpus(small_corpus)


class TestCoevolution:
    def test_rows_for_all_projects(self, records):
        result = compute_coevolution(records)
        assert len(result.rows) == len(records)

    def test_measures_bounded(self, records):
        result = compute_coevolution(records)
        for row in result.rows:
            assert row.schema_birth_lag_months >= 0
            assert 0.0 <= row.schema_source_overlap <= 1.0
            assert 0.0 < row.source_active_share <= 1.0
            assert 0.0 < row.schema_active_share <= 1.0
            assert math.isnan(row.activity_rho) \
                or -1.0 - 1e-9 <= row.activity_rho <= 1.0 + 1e-9

    def test_lag_equals_birth_month(self, records):
        result = compute_coevolution(records)
        by_name = {row.name: row for row in result.rows}
        for record in records:
            assert by_name[record.name].schema_birth_lag_months \
                == record.profile.birth_month

    def test_aggregates(self, records):
        result = compute_coevolution(records)
        assert result.median_birth_lag >= 0
        assert 0.0 <= result.median_overlap <= 1.0
        assert 0.0 <= result.share_born_with_project <= 1.0

    def test_no_source_series_raises(self, records):
        bare = []
        for record in records:
            profile = dataclasses.replace(record.profile, source=None)
            labeled = dataclasses.replace(record.labeled,
                                          profile=profile)
            bare.append(dataclasses.replace(record, labeled=labeled))
        with pytest.raises(AnalysisError):
            compute_coevolution(bare)

    def test_schema_sparser_than_source(self, records):
        # The corpus trait: source activity is spread over most months,
        # schema activity over few.
        result = compute_coevolution(records)
        schema_shares = [r.schema_active_share for r in result.rows]
        source_shares = [r.source_active_share for r in result.rows]
        assert sum(schema_shares) < sum(source_shares)
