"""Integration tests for the classify-batch CLI command."""

from datetime import datetime

import pytest

from repro.cli import main
from repro.history.repository import save_history_to_jsonl
from tests.conftest import make_history

DDL = "CREATE TABLE t (a INT, b INT);"


@pytest.fixture
def history_dir(tmp_path):
    # One directory-style history.
    sub = tmp_path / "proj-dir"
    sub.mkdir()
    (sub / "2020-01-10.sql").write_text(DDL)
    (sub / "2021-06-10.sql").write_text(
        DDL + " CREATE TABLE u (c INT);")
    # One JSONL history.
    history = make_history([DDL], name="proj-jsonl",
                           project_start=datetime(2020, 1, 1),
                           project_end=datetime(2022, 1, 1))
    save_history_to_jsonl(history, tmp_path / "proj-jsonl.jsonl")
    # One too-short history (for the protocol flag).
    short = make_history([DDL], name="shorty",
                         project_start=datetime(2020, 1, 1),
                         project_end=datetime(2020, 6, 1))
    save_history_to_jsonl(short, tmp_path / "shorty.jsonl")
    return tmp_path


class TestClassifyCommand:
    def test_classifies_all(self, history_dir, capsys):
        code = main(["classify", str(history_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "proj-dir" in out
        assert "proj-jsonl" in out
        assert "shorty" in out
        assert "Classified 3 histories" in out

    def test_protocol_excludes_short(self, history_dir, capsys):
        code = main(["classify", str(history_dir), "--apply-protocol"])
        assert code == 0
        captured = capsys.readouterr()
        assert "Classified 2 histories" in captured.out
        assert "shorty" not in captured.out
        assert "short-lifespan" in captured.err

    def test_empty_directory_fails(self, tmp_path, capsys):
        code = main(["classify", str(tmp_path)])
        assert code == 1
        assert "no histories" in capsys.readouterr().err

    def test_unreadable_entries_skipped(self, history_dir, capsys):
        (history_dir / "broken.jsonl").write_text("{nope}\n")
        code = main(["classify", str(history_dir)])
        assert code == 0
        assert "skipping broken.jsonl" in capsys.readouterr().err
