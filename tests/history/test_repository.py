"""Unit tests for schema histories: construction, loading, saving."""

from datetime import datetime

import pytest

from repro.errors import HistoryError
from repro.history.commit import Commit
from repro.history.repository import (
    SchemaHistory,
    load_history_from_directory,
    load_history_from_jsonl,
    month_index,
    save_history_to_jsonl,
)
from repro.sqlddl.dialect import Dialect

DDL = "CREATE TABLE t (a INT);"


def commit(year, month, day=15, sha=None, ddl=DDL):
    return Commit(sha=sha or f"{year}-{month}",
                  timestamp=datetime(year, month, day), ddl_text=ddl)


class TestMonthIndex:
    def test_same_month(self):
        assert month_index(datetime(2020, 3, 1), datetime(2020, 3, 31)) == 0

    def test_next_month(self):
        assert month_index(datetime(2020, 3, 1), datetime(2020, 4, 1)) == 1

    def test_across_years(self):
        assert month_index(datetime(2019, 11, 1),
                           datetime(2021, 2, 1)) == 15


class TestConstruction:
    def test_sorts_commits(self):
        history = SchemaHistory("p", [commit(2021, 5), commit(2020, 1)])
        assert history.commits[0].timestamp.year == 2020

    def test_defaults_window_to_commits(self):
        history = SchemaHistory("p", [commit(2020, 1), commit(2020, 6)])
        assert history.project_start == datetime(2020, 1, 15)
        assert history.pup_months == 6

    def test_explicit_window(self):
        history = SchemaHistory(
            "p", [commit(2020, 6)],
            project_start=datetime(2020, 1, 1),
            project_end=datetime(2020, 12, 31))
        assert history.pup_months == 12
        assert history.commit_month(history.commits[0]) == 5

    def test_empty_raises(self):
        with pytest.raises(HistoryError):
            SchemaHistory("p", [])

    def test_start_after_first_commit_raises(self):
        with pytest.raises(HistoryError):
            SchemaHistory("p", [commit(2020, 1)],
                          project_start=datetime(2020, 6, 1))

    def test_end_before_last_commit_raises(self):
        with pytest.raises(HistoryError):
            SchemaHistory("p", [commit(2020, 6)],
                          project_end=datetime(2020, 1, 1))

    def test_len(self):
        assert len(SchemaHistory("p", [commit(2020, 1)])) == 1


class TestVersions:
    def test_versions_parse_schemas(self):
        history = SchemaHistory("p", [commit(2020, 1)])
        versions = history.versions()
        assert versions[0].schema.table("t") is not None

    def test_versions_cached(self):
        history = SchemaHistory("p", [commit(2020, 1)])
        assert history.versions() is history.versions()

    def test_parse_issues_counted(self):
        noisy = "INSERT INTO x VALUES (1); CREATE TABLE t (a INT);"
        history = SchemaHistory("p", [commit(2020, 1, ddl=noisy)])
        assert history.versions()[0].parse_issues == 1

    def test_version_timestamp_shortcut(self):
        history = SchemaHistory("p", [commit(2020, 1)])
        assert history.versions()[0].timestamp == datetime(2020, 1, 15)


class TestDirectoryLoading:
    def test_loads_sorted(self, tmp_path):
        (tmp_path / "2020-03-01.sql").write_text(DDL)
        (tmp_path / "2020-01-01.sql").write_text(DDL)
        history = load_history_from_directory(tmp_path, "proj")
        assert history.project_name == "proj"
        assert len(history) == 2
        assert history.commits[0].timestamp == datetime(2020, 1, 1)

    def test_timestamp_with_time(self, tmp_path):
        (tmp_path / "2020-01-02T0930.sql").write_text(DDL)
        history = load_history_from_directory(tmp_path)
        assert history.commits[0].timestamp == datetime(2020, 1, 2, 9, 30)

    def test_ignores_unnamed_files(self, tmp_path):
        (tmp_path / "2020-01-01.sql").write_text(DDL)
        (tmp_path / "readme.sql").write_text(DDL)
        assert len(load_history_from_directory(tmp_path)) == 1

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(HistoryError):
            load_history_from_directory(tmp_path)


class TestJsonlRoundTrip:
    def test_save_and_load(self, tmp_path):
        history = SchemaHistory(
            "proj", [commit(2020, 2), commit(2020, 7)],
            project_start=datetime(2020, 1, 1),
            project_end=datetime(2021, 1, 1),
            dialect=Dialect.MYSQL)
        path = tmp_path / "history.jsonl"
        save_history_to_jsonl(history, path)
        loaded = load_history_from_jsonl(path)
        assert loaded.project_name == "proj"
        assert loaded.pup_months == history.pup_months
        assert loaded.dialect is Dialect.MYSQL
        assert [c.ddl_text for c in loaded.commits] \
            == [c.ddl_text for c in history.commits]

    def test_load_without_header(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(
            '{"sha": "a", "timestamp": "2020-01-15T00:00:00", '
            '"ddl": "CREATE TABLE t (a INT);"}\n')
        history = load_history_from_jsonl(path)
        assert history.project_name == "h"
        assert len(history) == 1

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(HistoryError):
            load_history_from_jsonl(path)

    def test_missing_timestamp_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"sha": "a", "ddl": "x"}\n')
        with pytest.raises(HistoryError):
            load_history_from_jsonl(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(HistoryError):
            load_history_from_jsonl(path)
