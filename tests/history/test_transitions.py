"""Unit tests for per-version transitions."""

from repro.diff.changes import ChangeKind
from repro.history.transitions import compute_transitions
from tests.conftest import make_history


class TestTransitions:
    def test_first_transition_is_birth(self, simple_history):
        transitions = compute_transitions(simple_history)
        assert transitions[0].is_birth
        assert transitions[0].previous is None
        assert all(not t.is_birth for t in transitions[1:])

    def test_birth_diff_counts_initial_attributes(self, simple_history):
        birth = compute_transitions(simple_history)[0]
        assert birth.diff.total_affected == 2
        assert all(c.kind is ChangeKind.BORN_WITH_TABLE
                   for c in birth.diff)

    def test_months_follow_commits(self, simple_history):
        transitions = compute_transitions(simple_history)
        assert [t.month for t in transitions] == [0, 1, 2]

    def test_chain_links_versions(self, simple_history):
        transitions = compute_transitions(simple_history)
        assert transitions[1].previous is transitions[0].version
        assert transitions[2].previous is transitions[1].version

    def test_single_commit_history(self):
        history = make_history(["CREATE TABLE t (a INT);"])
        transitions = compute_transitions(history)
        assert len(transitions) == 1
        assert transitions[0].diff.total_affected == 1

    def test_late_birth_month_offset(self):
        from datetime import datetime
        history = make_history(["CREATE TABLE t (a INT);"],
                               project_start=datetime(2019, 1, 1),
                               project_end=datetime(2022, 1, 1),
                               start_month=14)
        transitions = compute_transitions(history)
        # Commits are placed relative to 2020; project starts 2019-01.
        assert transitions[0].month == 12 + 14
