"""Unit tests for the synthetic source-code series."""

import random

from repro.history.sourcecode import synthetic_source_series


class TestSyntheticSource:
    def test_length_matches_months(self):
        series = synthetic_source_series(24, random.Random(1))
        assert series.months == 24

    def test_endpoints_always_active(self):
        for seed in range(10):
            series = synthetic_source_series(18, random.Random(seed))
            assert series.monthly[0] > 0
            assert series.monthly[-1] > 0

    def test_deterministic_under_seed(self):
        a = synthetic_source_series(30, random.Random(7))
        b = synthetic_source_series(30, random.Random(7))
        assert a.monthly == b.monthly

    def test_single_month(self):
        series = synthetic_source_series(1, random.Random(3))
        assert series.months == 1
        assert series.total > 0

    def test_quiet_months_occur(self):
        series = synthetic_source_series(
            120, random.Random(5), quiet_probability=0.5)
        assert 0 in series.monthly

    def test_all_nonnegative(self):
        series = synthetic_source_series(60, random.Random(11))
        assert min(series.monthly) >= 0
