"""Tests for incremental (migration-style) histories."""

import random
from datetime import datetime

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus.ddlgen import realize_history
from repro.corpus.planner import plan_schedule
from repro.errors import CorpusError
from repro.history.commit import Commit
from repro.history.heartbeat import schema_heartbeat
from repro.history.repository import (
    SchemaHistory,
    load_history_from_jsonl,
    save_history_to_jsonl,
)
from repro.metrics.profile import ProjectProfile


def migration_history(incremental=True):
    commits = [
        Commit("m1", datetime(2020, 1, 5),
               "CREATE TABLE users (id INT PRIMARY KEY, email TEXT);"),
        Commit("m2", datetime(2020, 4, 2),
               "ALTER TABLE users ADD COLUMN name TEXT;"
               "CREATE TABLE posts (id INT PRIMARY KEY, author INT);"),
        Commit("m3", datetime(2020, 9, 9),
               "ALTER TABLE users ALTER COLUMN email TYPE VARCHAR(255);"
               "DROP TABLE posts;"),
    ]
    return SchemaHistory("migrations", commits,
                         project_end=datetime(2021, 6, 1),
                         incremental=incremental)


class TestIncrementalMaterialization:
    def test_versions_accumulate(self):
        history = migration_history()
        versions = history.versions()
        assert versions[0].schema.table_names == ("users",)
        assert set(versions[1].schema.table_names) == {"users", "posts"}
        assert versions[1].schema.table("users").attribute_names \
            == ("id", "email", "name")
        assert versions[2].schema.table_names == ("users",)

    def test_heartbeat_counts_migration_units(self):
        series = schema_heartbeat(migration_history())
        # m1: 2 born; m2: 1 injected + 2 born; m3: 1 type + 2 deleted.
        assert series.monthly[0] == 2
        assert series.monthly[3] == 3
        assert series.monthly[8] == 3

    def test_snapshot_interpretation_would_differ(self):
        # The same commits read as snapshots tell a (wrong) story:
        # every commit looks like a full re-creation.
        snapshot_view = migration_history(incremental=False)
        incremental_view = migration_history(incremental=True)
        assert schema_heartbeat(snapshot_view).monthly \
            != schema_heartbeat(incremental_view).monthly

    def test_profile_works_end_to_end(self):
        profile = ProjectProfile.from_history(migration_history())
        assert profile.total_activity == 8

    def test_jsonl_roundtrip_preserves_flag(self, tmp_path):
        history = migration_history()
        path = tmp_path / "migrations.jsonl"
        save_history_to_jsonl(history, path)
        loaded = load_history_from_jsonl(path)
        assert loaded.incremental
        assert schema_heartbeat(loaded).monthly \
            == schema_heartbeat(history).monthly


class TestGeneratedIncrementalHistories:
    def test_bad_commit_style_raises(self):
        rng = random.Random(0)
        plan = plan_schedule(rng, pup_months=20, birth_month=0,
                             top_month=0, birth_units=10, agm=0,
                             post_units=0)
        with pytest.raises(CorpusError):
            realize_history(plan, rng, "x", commit_style="weird")

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_styles_measure_identically(self, seed):
        """THE equivalence property: snapshot-style and incremental-style
        realizations of one plan produce identical heartbeats."""
        rng = random.Random(seed)
        try:
            plan = plan_schedule(
                rng, pup_months=14 + seed % 40,
                birth_month=seed % 4, top_month=seed % 4 + seed % 9,
                birth_units=5 + seed % 30, agm=min(2, max(seed % 9 - 1, 0)),
                post_units=seed % 50)
        except CorpusError:
            return
        snapshot = realize_history(plan, random.Random(seed), "s",
                                   commit_style="snapshot")
        incremental = realize_history(plan, random.Random(seed), "i",
                                      commit_style="incremental")
        assert incremental.incremental
        assert schema_heartbeat(snapshot).monthly \
            == schema_heartbeat(incremental).monthly
