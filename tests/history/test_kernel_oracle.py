"""Oracle tests: columnar kernels == retained naive references.

The kernel layer (`repro.history.kernel`) replaced per-call loops and
enum-keyed dict churn with fused prefix passes and flat integer rows.
Every kernel keeps its pre-kernel implementation alongside as a
``naive_*`` function; this suite asserts exact equality between the two
on arbitrary inputs, which is the argument that the golden-pinned study
outputs cannot drift.
"""

from hypothesis import given, settings, strategies as st

from repro.diff.changes import KIND_ORDER, N_KINDS
from repro.diff.stats import ChangeBreakdown, combine_breakdowns
from repro.history.kernel import (
    accumulate_month_counts,
    activity_prefix,
    naive_accumulate_month_counts,
    naive_combine_flat,
    naive_cumulative,
    naive_cumulative_fraction,
)

monthly_lists = st.lists(st.integers(0, 200), min_size=1, max_size=80)

flat_rows = st.tuples(*([st.integers(0, 30)] * N_KINDS))


@st.composite
def month_events(draw):
    months = draw(st.integers(1, 40))
    events = draw(st.lists(
        st.tuples(st.integers(0, months - 1), flat_rows), max_size=60))
    return months, events


@settings(max_examples=200, deadline=None)
@given(monthly=monthly_lists)
def test_activity_prefix_matches_naive(monthly):
    cumulative, total, fractions = activity_prefix(monthly)
    assert cumulative == naive_cumulative(monthly)
    assert total == sum(monthly)
    assert fractions == naive_cumulative_fraction(monthly)


def test_activity_prefix_all_zero():
    cumulative, total, fractions = activity_prefix([0, 0, 0])
    assert cumulative == (0, 0, 0)
    assert total == 0
    assert fractions == (0.0, 0.0, 0.0)


def test_activity_prefix_single_month():
    cumulative, total, fractions = activity_prefix([5])
    assert cumulative == (5,)
    assert total == 5
    assert fractions == (1.0,)


@settings(max_examples=200, deadline=None)
@given(flats=st.lists(flat_rows, max_size=30))
def test_combine_breakdowns_matches_naive(flats):
    combined = combine_breakdowns(
        [ChangeBreakdown(flat=flat) for flat in flats])
    assert combined.flat == naive_combine_flat(flats)


@settings(max_examples=200, deadline=None)
@given(data=month_events())
def test_accumulate_month_counts_matches_naive(data):
    months, events = data
    monthly, rows = accumulate_month_counts(months, iter(events))
    naive_monthly, naive_rows = naive_accumulate_month_counts(
        months, iter(events))
    assert monthly == naive_monthly
    zero_row = (0,) * N_KINDS
    for row, naive_row in zip(rows, naive_rows):
        # A None row means "no event touched this month" — the caller
        # shares the empty-breakdown singleton, which must equal the
        # naive all-zero combination.
        assert (zero_row if row is None else tuple(row)) == naive_row


def test_accumulate_month_counts_no_events():
    monthly, rows = accumulate_month_counts(3, iter(()))
    assert monthly == [0, 0, 0]
    assert rows == [None, None, None]


def test_accumulate_month_counts_single_month_project():
    flat = tuple(range(1, N_KINDS + 1))
    monthly, rows = accumulate_month_counts(1, iter([(0, flat), (0, flat)]))
    assert monthly == [2 * sum(flat)]
    assert tuple(rows[0]) == tuple(2 * value for value in flat)


@settings(max_examples=200, deadline=None)
@given(flat=flat_rows)
def test_breakdown_count_matches_by_kind_view(flat):
    breakdown = ChangeBreakdown(flat=flat)
    for kind, expected in zip(KIND_ORDER, flat):
        assert breakdown.count(kind) == expected
    assert dict(breakdown.by_kind) == breakdown.counts
    assert breakdown.total == sum(flat)
