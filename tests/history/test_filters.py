"""Unit tests for the corpus-selection protocol."""

from datetime import datetime

from repro.history.filters import (
    ExclusionRecord,
    filter_study_corpus,
    is_noise_name,
)
from tests.conftest import make_history

DDL = "CREATE TABLE t (a INT);"


def long_history(name="good-project"):
    return make_history([DDL], name=name,
                        project_start=datetime(2020, 1, 1),
                        project_end=datetime(2022, 1, 1))


def short_history(name="short-project"):
    return make_history([DDL], name=name,
                        project_start=datetime(2020, 1, 1),
                        project_end=datetime(2020, 12, 1))


def empty_history(name="empty-project"):
    return make_history(["-- no tables at all"], name=name,
                        project_start=datetime(2020, 1, 1),
                        project_end=datetime(2022, 1, 1))


class TestNoiseNames:
    def test_matches_fragments(self):
        for name in ("my-example", "DemoApp", "unit-tests",
                     "db-migrations"):
            assert is_noise_name(name)

    def test_clean_names_pass(self):
        for name in ("wordpress", "gitlab", "mediawiki"):
            assert not is_noise_name(name)


class TestFilterProtocol:
    def test_keeps_good_projects(self):
        result = filter_study_corpus([long_history()])
        assert result.kept_count == 1
        assert result.excluded == ()

    def test_drops_short_lifespan(self):
        result = filter_study_corpus([short_history()])
        assert result.kept_count == 0
        assert result.excluded[0].reason == "short-lifespan"

    def test_exactly_12_months_dropped(self):
        # The paper keeps projects with *more than* 12 months.
        history = make_history([DDL], name="year",
                               project_start=datetime(2020, 1, 1),
                               project_end=datetime(2020, 12, 31))
        assert history.pup_months == 12
        result = filter_study_corpus([history])
        assert result.kept_count == 0

    def test_drops_zero_evolution(self):
        result = filter_study_corpus([empty_history()])
        assert result.excluded[0].reason == "zero-evolution"

    def test_drops_noise_names(self):
        result = filter_study_corpus([long_history("schema-test-bed")])
        assert result.excluded[0].reason == "noise-name"

    def test_reason_priority_noise_first(self):
        result = filter_study_corpus([short_history("demo-thing")])
        assert result.excluded[0].reason == "noise-name"

    def test_flags_togglable(self):
        histories = [empty_history(), long_history("examples-repo")]
        result = filter_study_corpus(histories,
                                     drop_zero_evolution=False,
                                     drop_noise_names=False)
        assert result.kept_count == 2

    def test_mixed_corpus_accounting(self):
        histories = [long_history("a"), short_history("b"),
                     empty_history("c"), long_history("test-d")]
        result = filter_study_corpus(histories)
        assert result.kept_count == 1
        assert result.excluded_by_reason() == {
            "short-lifespan": 1, "zero-evolution": 1, "noise-name": 1}

    def test_generated_corpus_fully_survives(self, small_corpus):
        result = filter_study_corpus(p.history for p in small_corpus)
        assert result.kept_count == len(small_corpus)
