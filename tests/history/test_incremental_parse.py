"""Golden equivalence of the incremental materialization path.

The incremental path (statement memo + table reuse + whole-version
shortcut) must be observably identical to the classic full re-parse:
same schemas, same parse-issue counts, same study records and pattern
assignments — only faster, with the reused ``Table`` objects being
*identical* (``is``) across versions.
"""

from repro.diff.engine import diff_schemas
from repro.history.repository import (
    NO_INCREMENTAL_ENV,
    SchemaHistory,
    incremental_parse_default,
    set_incremental_parse_default,
)
from repro.sqlddl.memo import parse_counters, reset_parse_counters
from tests.conftest import make_history


def both_modes(history):
    """(incremental, full) version lists of one history."""
    history._versions = None
    history.incremental_parse = True
    incremental = history.versions()
    history._versions = None
    history.incremental_parse = False
    full = history.versions()
    history._versions = None
    history.incremental_parse = None
    return incremental, full


def assert_equivalent(history):
    incremental, full = both_modes(history)
    assert len(incremental) == len(full)
    for inc, ref in zip(incremental, full):
        assert inc.commit is ref.commit
        assert inc.schema == ref.schema
        assert inc.parse_issues == ref.parse_issues


def test_simple_history_equivalent(simple_history):
    assert_equivalent(simple_history)


def test_unchanged_version_reuses_schema_object():
    ddl = "CREATE TABLE a (x INT);\nCREATE TABLE b (y INT);"
    history = make_history([ddl, ddl, ddl + "\nCREATE TABLE c (z INT);"])
    history.incremental_parse = True
    versions = history.versions()
    # Identical snapshot: whole-version shortcut hands back the object.
    assert versions[1].schema is versions[0].schema
    assert versions[2].schema is not versions[1].schema


def test_unchanged_tables_are_identical_objects():
    v1 = "CREATE TABLE a (x INT);\nCREATE TABLE b (y INT);"
    v2 = v1 + "\nALTER TABLE b ADD COLUMN z INT;"
    history = make_history([v1, v2])
    history.incremental_parse = True
    first, second = history.versions()
    # 'a' is untouched between versions: the exact same frozen Table.
    assert second.schema.table("a") is first.schema.table("a")
    # 'b' changed: rebuilt.
    assert second.schema.table("b") is not first.schema.table("b")
    assert len(second.schema.table("b").attributes) == 2


def test_diff_identical_with_reused_tables():
    """diff_schemas over reused Table objects == diff over re-parsed ones."""
    v1 = ("CREATE TABLE keep (id INT PRIMARY KEY, name VARCHAR(10));\n"
          "CREATE TABLE grow (id INT);\n")
    v2 = ("CREATE TABLE keep (id INT PRIMARY KEY, name VARCHAR(10));\n"
          "CREATE TABLE grow (id INT);\n"
          "ALTER TABLE grow ADD COLUMN extra TEXT;\n"
          "CREATE TABLE born (id INT);\n")
    history = make_history([v1, v2])
    incremental, full = both_modes(history)
    fast = diff_schemas(incremental[0].schema, incremental[1].schema)
    slow = diff_schemas(full[0].schema, full[1].schema)
    assert fast == slow
    assert fast.changes  # the delta itself is visible, not skipped


def test_parse_issue_counts_preserved():
    v1 = ("CREATE TABLE a (x INT);\n"
          "INSERT INTO a VALUES (1);\n"        # non-ddl skip
          "ALTER TABLE missing ADD COLUMN y INT;\n")  # builder issue
    v2 = v1 + "CREATE TABLE !!!;\n"            # parse-error skip
    assert_equivalent(make_history([v1, v2]))


def test_lex_error_version_falls_back():
    good = "CREATE TABLE a (x INT);"
    # NUL is unlexable: the classic path records one whole-file
    # "lex-error" skip and an empty schema. Fallback must reproduce it.
    bad = "CREATE TABLE a (x INT);\nSELECT \x00;"
    history = make_history([good, bad, good])
    assert_equivalent(history)
    history.incremental_parse = True
    history._versions = None
    versions = history.versions()
    assert versions[1].parse_issues == 1
    assert not versions[1].schema.tables


def test_rename_collision_is_not_confused():
    """A table renamed onto another's old name must not reuse its Table."""
    v1 = ("CREATE TABLE first (x INT);\n"
          "CREATE TABLE second (y INT);\n")
    v2 = ("CREATE TABLE second (y INT);\n"
          "ALTER TABLE second RENAME TO first;\n"
          "CREATE TABLE second (z INT);\n")
    assert_equivalent(make_history([v1, v2]))


def test_create_table_like_tracks_source_trace():
    v1 = ("CREATE TABLE proto (x INT, y TEXT);\n"
          "CREATE TABLE copy LIKE proto;\n")
    v2 = ("CREATE TABLE proto (x INT, y TEXT, z INT);\n"
          "CREATE TABLE copy LIKE proto;\n")
    incremental, full = both_modes(make_history([v1, v2]))
    # The clone's content depends on the (changed) source: no stale reuse.
    assert incremental[1].schema == full[1].schema
    assert len(incremental[1].schema.table("copy").attributes) == 3


def test_memo_stats_recorded():
    ddl = "CREATE TABLE a (x INT);\nCREATE TABLE b (y INT);"
    history = make_history([ddl, ddl + "\nCREATE TABLE c (z INT);"])
    history.incremental_parse = True
    history.versions()
    hits, misses = history.parse_stats
    assert hits == 2      # a and b re-seen in version 2
    assert misses == 3    # a, b, c parsed once each


def test_global_counters_observe_history_parsing():
    reset_parse_counters()
    ddl = "CREATE TABLE a (x INT);"
    history = make_history([ddl, ddl + "\nCREATE TABLE b (y INT);"])
    history.incremental_parse = True
    history.versions()
    hits, misses = parse_counters()
    assert hits == 1 and misses == 2
    reset_parse_counters()


def test_default_flag_environment(monkeypatch):
    monkeypatch.delenv(NO_INCREMENTAL_ENV, raising=False)
    assert incremental_parse_default() is True
    monkeypatch.setenv(NO_INCREMENTAL_ENV, "1")
    assert incremental_parse_default() is False


def test_set_default_round_trip(monkeypatch):
    monkeypatch.delenv(NO_INCREMENTAL_ENV, raising=False)
    set_incremental_parse_default(False)
    assert incremental_parse_default() is False
    set_incremental_parse_default(True)
    assert incremental_parse_default() is True


def test_migration_format_ignores_flag():
    """incremental=True histories (migration commits) use the cumulative
    path regardless of the parse flag."""
    history = SchemaHistory(
        "migrations",
        make_history(["CREATE TABLE a (x INT);",
                      "ALTER TABLE a ADD COLUMN y INT;"]).commits,
        incremental=True, incremental_parse=True)
    versions = history.versions()
    assert len(versions[1].schema.table("a").attributes) == 2


def test_golden_equivalence_full_study(small_corpus):
    """Whole-study golden test: records and pattern assignments of the
    incremental and full-parse paths are identical."""
    from repro.study.pipeline import records_from_corpus, run_study

    def run(enabled):
        for project in small_corpus.projects:
            project.history._versions = None
            project.history.incremental_parse = enabled
        try:
            records = records_from_corpus(small_corpus)
            return records, run_study(records)
        finally:
            for project in small_corpus.projects:
                project.history.incremental_parse = None
                project.history._versions = None

    inc_records, inc_study = run(True)
    full_records, full_study = run(False)
    assert inc_records == full_records
    assert ([r.pattern for r in inc_records]
            == [r.pattern for r in full_records])
    assert inc_study.table1 == full_study.table1
