"""Unit and property tests for activity series and schema heartbeats."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.diff.changes import ChangeKind
from repro.errors import MetricError
from repro.history.heartbeat import ActivitySeries, schema_heartbeat
from tests.conftest import make_history


class TestActivitySeriesBasics:
    def test_totals(self):
        series = ActivitySeries((3, 0, 2))
        assert series.total == 5
        assert series.months == 3
        assert series.active_month_indices == (0, 2)

    def test_empty_raises(self):
        with pytest.raises(MetricError):
            ActivitySeries(())

    def test_negative_raises(self):
        with pytest.raises(MetricError):
            ActivitySeries((1, -1))

    def test_misaligned_breakdowns_raise(self):
        from repro.diff.stats import ChangeBreakdown
        with pytest.raises(MetricError):
            ActivitySeries((1, 2), breakdowns=(ChangeBreakdown.empty(),))

    def test_cumulative(self):
        assert ActivitySeries((1, 0, 2, 3)).cumulative() == (1, 1, 3, 6)

    def test_cumulative_fraction(self):
        assert ActivitySeries((1, 0, 3)).cumulative_fraction() \
            == (0.25, 0.25, 1.0)

    def test_zero_total_fraction_is_zero(self):
        assert ActivitySeries((0, 0)).cumulative_fraction() == (0.0, 0.0)


class TestSampling:
    def test_fraction_at_bounds(self):
        series = ActivitySeries((1, 0, 0, 1))
        assert series.fraction_at(0.0) == 0.5
        assert series.fraction_at(1.0) == 1.0

    def test_fraction_at_boundaries_follow_floor_rule(self):
        # The documented rule: index = min(floor(p * months), months - 1).
        series = ActivitySeries((1, 1, 1, 1))
        # p = 0 floors to month 0.
        assert series.fraction_at(0.0) == 0.25
        # p = 1/months lands exactly on the first boundary -> month 1,
        # not month 0: the floor rule is right-continuous at boundaries.
        assert series.fraction_at(1 / 4) == 0.5
        # p = 1 floors to `months`, which clamps to the last month.
        assert series.fraction_at(1.0) == 1.0

    def test_fraction_at_single_month_series(self):
        series = ActivitySeries((7,))
        assert series.fraction_at(0.0) == 1.0
        assert series.fraction_at(1.0) == 1.0

    def test_fraction_at_out_of_range(self):
        series = ActivitySeries((1,))
        with pytest.raises(MetricError):
            series.fraction_at(1.5)
        with pytest.raises(MetricError):
            series.fraction_at(-0.1)

    def test_sample_length(self):
        series = ActivitySeries((1, 2, 3))
        assert len(series.sample(20)) == 20

    def test_sample_needs_positive_points(self):
        with pytest.raises(MetricError):
            ActivitySeries((1,)).sample(0)

    def test_single_month_sample(self):
        assert ActivitySeries((5,)).sample(4) == (1.0, 1.0, 1.0, 1.0)


class TestLandmarkHelpers:
    def test_first_active_month(self):
        assert ActivitySeries((0, 0, 4)).first_active_month() == 2
        assert ActivitySeries((0, 0)).first_active_month() is None

    def test_month_reaching_fraction(self):
        series = ActivitySeries((5, 0, 4, 1))
        assert series.month_reaching_fraction(0.5) == 0
        assert series.month_reaching_fraction(0.9) == 2
        assert series.month_reaching_fraction(1.0) == 3

    def test_month_reaching_fraction_zero_total(self):
        assert ActivitySeries((0, 0)).month_reaching_fraction(0.9) is None

    def test_exact_boundary_counts(self):
        series = ActivitySeries((9, 1))
        assert series.month_reaching_fraction(0.9) == 0


@settings(max_examples=120, deadline=None)
@given(monthly=st.lists(st.integers(0, 50), min_size=1, max_size=60))
def test_cumulative_fraction_monotone_and_bounded(monthly):
    series = ActivitySeries(tuple(monthly))
    fractions = series.cumulative_fraction()
    assert all(0.0 <= f <= 1.0 + 1e-12 for f in fractions)
    assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))
    if series.total > 0:
        assert fractions[-1] == pytest.approx(1.0)


@settings(max_examples=100, deadline=None)
@given(monthly=st.lists(st.integers(0, 50), min_size=1, max_size=60),
       points=st.integers(1, 40))
def test_sample_monotone(monthly, points):
    series = ActivitySeries(tuple(monthly))
    sample = series.sample(points)
    assert len(sample) == points
    assert all(a <= b + 1e-12 for a, b in zip(sample, sample[1:]))


class TestSchemaHeartbeat:
    def test_counts_affected_attributes_per_month(self, simple_history):
        series = schema_heartbeat(simple_history)
        # month 0: 2 born; month 1: 3 born; month 2: 1 type change
        assert series.monthly[:3] == (2, 3, 1)
        assert series.total == 6
        assert series.months == simple_history.pup_months

    def test_breakdowns_align(self, simple_history):
        series = schema_heartbeat(simple_history)
        assert series.breakdowns[0].count(ChangeKind.BORN_WITH_TABLE) == 2
        assert series.breakdowns[2].count(ChangeKind.TYPE_CHANGED) == 1

    def test_multiple_commits_in_one_month_sum(self):
        ddl1 = "CREATE TABLE a (x INT);"
        ddl2 = ddl1 + " CREATE TABLE b (y INT);"
        history = make_history([ddl1, ddl2], months_apart=0)
        series = schema_heartbeat(history)
        assert series.monthly[0] == 2

    def test_no_change_commit_contributes_zero(self):
        ddl = "CREATE TABLE a (x INT);"
        history = make_history([ddl, ddl])
        series = schema_heartbeat(history)
        assert series.total == 1
