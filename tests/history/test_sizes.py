"""Unit tests for the size-over-time series."""

import pytest

from repro.errors import MetricError
from repro.history.sizes import SizeSeries, size_series
from tests.conftest import make_history
from datetime import datetime


class TestSizeSeries:
    def test_forward_fill(self):
        history = make_history(
            ["CREATE TABLE t (a INT);",
             "CREATE TABLE t (a INT, b INT); CREATE TABLE u (c INT);"],
            months_apart=2,
            project_end=datetime(2020, 7, 1))
        series = size_series(history)
        assert series.months == 7
        assert series.tables == (1, 1, 2, 2, 2, 2, 2)
        assert series.attributes == (1, 1, 3, 3, 3, 3, 3)

    def test_zero_before_birth(self):
        history = make_history(
            ["CREATE TABLE t (a INT);"],
            start_month=2,
            project_start=datetime(2020, 1, 1),
            project_end=datetime(2020, 12, 31))
        series = size_series(history)
        assert series.tables[:2] == (0, 0)
        assert series.tables[2] == 1

    def test_growth_and_shrink_months(self):
        history = make_history(
            ["CREATE TABLE t (a INT, b INT);",
             "CREATE TABLE t (a INT);",
             "CREATE TABLE t (a INT, b INT, c INT);"])
        series = size_series(history)
        assert series.growth_months() == (0, 2)
        assert series.shrink_months() == (1,)

    def test_final_and_peak(self):
        history = make_history(
            ["CREATE TABLE t (a INT, b INT, c INT);",
             "CREATE TABLE t (a INT);"])
        series = size_series(history)
        assert series.peak_attributes == 3
        assert series.final_attributes == 1
        assert series.final_tables == 1

    def test_multiple_commits_in_month_last_wins(self):
        history = make_history(
            ["CREATE TABLE t (a INT);",
             "CREATE TABLE t (a INT, b INT);"],
            months_apart=0)
        series = size_series(history)
        assert series.attributes[0] == 2

    def test_invalid_construction(self):
        with pytest.raises(MetricError):
            SizeSeries(tables=(), attributes=())
        with pytest.raises(MetricError):
            SizeSeries(tables=(1,), attributes=(1, 2))
