"""Integration: the same logical schema spelled in three dialects.

Dialect-specific spellings (backticks vs double quotes, AUTO_INCREMENT
vs SERIAL vs AUTOINCREMENT, display widths, inline vs table-level
constraints) must all build the *same* logical schema — the property
that makes histories comparable when a project migrates engines.
"""

from repro.diff.engine import diff_schemas
from repro.schema.builder import build_schema
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.parser import parse_script

MYSQL = """
CREATE TABLE `users` (
  `id` INT(11) NOT NULL AUTO_INCREMENT,
  `email` VARCHAR(255) NOT NULL,
  `is_admin` TINYINT(1) NOT NULL DEFAULT 0,
  `balance` NUMERIC(10,2),
  PRIMARY KEY (`id`),
  UNIQUE KEY `uq_email` (`email`)
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;

CREATE TABLE `sessions` (
  `token` VARCHAR(64) NOT NULL,
  `user_id` INT(11) NOT NULL,
  PRIMARY KEY (`token`),
  CONSTRAINT `fk_user` FOREIGN KEY (`user_id`)
    REFERENCES `users` (`id`) ON DELETE CASCADE
) ENGINE=InnoDB;
"""

POSTGRES = """
CREATE TABLE public.users (
    id serial NOT NULL,
    email character varying(255) NOT NULL,
    is_admin boolean NOT NULL DEFAULT false,
    balance numeric(10,2)
);
ALTER TABLE ONLY public.users ADD CONSTRAINT users_pkey
    PRIMARY KEY (id);
ALTER TABLE ONLY public.users ADD CONSTRAINT uq_email UNIQUE (email);

CREATE TABLE public.sessions (
    token character varying(64) NOT NULL,
    user_id integer NOT NULL
);
ALTER TABLE ONLY public.sessions ADD CONSTRAINT sessions_pkey
    PRIMARY KEY (token);
ALTER TABLE ONLY public.sessions ADD CONSTRAINT fk_user
    FOREIGN KEY (user_id) REFERENCES public.users(id)
    ON DELETE CASCADE;
"""

SQLITE = """
CREATE TABLE users (
  id INTEGER NOT NULL PRIMARY KEY,
  email VARCHAR(255) NOT NULL UNIQUE,
  is_admin BOOLEAN NOT NULL DEFAULT 0,
  balance DECIMAL(10,2)
);
CREATE TABLE sessions (
  token VARCHAR(64) NOT NULL PRIMARY KEY,
  user_id INTEGER NOT NULL REFERENCES users (id) ON DELETE CASCADE
);
"""


def schema_for(sql, dialect):
    script = parse_script(sql, dialect)
    assert all(s.reason == "non-ddl" for s in script.skipped), \
        script.skipped
    return build_schema(script)


class TestCrossDialect:
    def test_mysql_vs_postgres_no_logical_diff(self):
        mysql = schema_for(MYSQL, Dialect.MYSQL)
        postgres = schema_for(POSTGRES, Dialect.POSTGRES)
        delta = diff_schemas(mysql, postgres)
        assert delta.total_affected == 0, list(delta)
        assert delta.tables_added == ()
        assert delta.tables_dropped == ()

    def test_mysql_vs_sqlite_no_logical_diff(self):
        mysql = schema_for(MYSQL, Dialect.MYSQL)
        sqlite = schema_for(SQLITE, Dialect.SQLITE)
        delta = diff_schemas(mysql, sqlite)
        assert delta.total_affected == 0, list(delta)

    def test_canonical_types_identical(self):
        mysql = schema_for(MYSQL, Dialect.MYSQL)
        postgres = schema_for(POSTGRES, Dialect.POSTGRES)
        for table_name in ("users", "sessions"):
            m_table = mysql.table(table_name)
            p_table = postgres.table(table_name)
            for attr in m_table.attributes:
                other = p_table.attribute(attr.name)
                assert other is not None, attr.name
                assert attr.data_type == other.data_type, attr.name

    def test_key_participation_identical(self):
        schemas = [schema_for(MYSQL, Dialect.MYSQL),
                   schema_for(POSTGRES, Dialect.POSTGRES),
                   schema_for(SQLITE, Dialect.SQLITE)]
        for schema in schemas:
            users = schema.table("users")
            sessions = schema.table("sessions")
            assert users.primary_key == ("id",)
            assert sessions.primary_key == ("token",)
            assert sessions.attribute("user_id").in_foreign_key
            assert ("email",) in users.unique_keys
