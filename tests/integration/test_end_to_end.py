"""End-to-end integration tests: DDL text in, paper results out."""

from datetime import datetime

import pytest

from repro import quick_profile
from repro.corpus.generator import generate_corpus
from repro.history.commit import Commit
from repro.history.repository import SchemaHistory
from repro.labels.quantization import label_profile
from repro.metrics.profile import ProjectProfile
from repro.patterns.classifier import classify
from repro.patterns.taxonomy import Family, Pattern, family_of
from repro.study.pipeline import records_from_corpus, run_study


class TestHandWrittenHistory:
    """A curated, human-verifiable project from raw SQL to a pattern."""

    def build(self):
        base = """
        -- web shop schema, v1
        CREATE TABLE users (
          id INT PRIMARY KEY AUTO_INCREMENT,
          email VARCHAR(255) NOT NULL UNIQUE,
          created_at TIMESTAMP DEFAULT CURRENT_TIMESTAMP
        ) ENGINE=InnoDB;
        CREATE TABLE products (
          id INT PRIMARY KEY,
          title VARCHAR(128),
          price DECIMAL(10,2)
        );
        """
        with_orders = base + """
        CREATE TABLE orders (
          id INT PRIMARY KEY,
          user_id INT REFERENCES users (id) ON DELETE CASCADE,
          total DECIMAL(10,2),
          placed_at TIMESTAMP
        );
        """
        refactored = with_orders.replace("VARCHAR(128)", "TEXT")
        commits = [
            Commit("v1", datetime(2018, 1, 3), base),
            Commit("v2", datetime(2018, 2, 14), with_orders),
            Commit("v3", datetime(2018, 3, 2), refactored),
        ]
        return SchemaHistory("webshop", commits,
                             project_start=datetime(2018, 1, 1),
                             project_end=datetime(2021, 12, 31))

    def test_measures(self):
        profile = ProjectProfile.from_history(self.build())
        assert profile.pup_months == 48
        assert profile.totals.schema_size_at_birth == 6
        assert profile.heartbeat.monthly[:3] == (6, 4, 1)
        assert profile.landmarks.top_band_month == 1

    def test_classifies_radical_sign(self):
        labeled = quick_profile(self.build())
        assert classify(labeled) is Pattern.RADICAL_SIGN
        assert family_of(Pattern.RADICAL_SIGN) \
            is Family.BE_QUICK_OR_BE_DEAD


class TestFullReproduction:
    """The headline shapes of the paper, asserted end to end."""

    def test_family_shares(self, full_study):
        records = full_study.records
        by_family = {family: 0 for family in Family}
        for record in records:
            by_family[family_of(record.pattern)] += 1
        total = len(records)
        # Paper: ~2/3, ~25 %, ~11 %.
        assert by_family[Family.BE_QUICK_OR_BE_DEAD] / total \
            == pytest.approx(2 / 3, abs=0.05)
        assert by_family[Family.STAIRWAY_TO_HEAVEN] / total \
            == pytest.approx(0.25, abs=0.05)
        assert by_family[Family.SCARED_TO_FALL_ASLEEP_AGAIN] / total \
            == pytest.approx(0.11, abs=0.05)

    def test_birth_statistics_shape(self, full_study):
        stats = full_study.stats34
        # ~1/3 born at V0; ~2/3 born by 25 % of life; ~half in the
        # first 10 %.
        assert 48 <= stats.born_at_v0 <= 56
        assert 95 <= stats.born_first_25pct <= 115
        assert 65 <= stats.born_first_10pct <= 95

    def test_aversion_to_change(self, full_study):
        stats = full_study.stats34
        # Paper: 98/151 zero active growth months; 76 % at most one.
        assert stats.zero_active_growth >= 80
        assert stats.at_most_one_active_growth / stats.total >= 0.65

    def test_activity_medians_ordering(self, full_study):
        activity = {row.pattern: row.median_post_birth
                    for row in full_study.activity.rows}
        # Order-of-magnitude split between the quiet and busy patterns.
        quiet_max = max(activity[Pattern.FLATLINER],
                        activity[Pattern.RADICAL_SIGN],
                        activity[Pattern.SIGMOID],
                        activity[Pattern.LATE_RISER],
                        activity[Pattern.SIESTA],
                        activity[Pattern.QUANTUM_STEPS])
        busy_min = min(activity[Pattern.SMOKING_FUNNEL],
                       activity[Pattern.REGULARLY_CURATED])
        assert busy_min > 4 * quiet_max

    def test_fig7_headline_probabilities(self, full_study):
        prediction = full_study.prediction
        # Born M0 -> ~75 % frozen (Flatliner + Radical Sign).
        assert prediction.frozen_probability(0) \
            == pytest.approx(0.75, abs=0.08)
        # Not born till M12 -> sharp focused change majority (paper 64 %).
        late_sharp = prediction.family_probability(
            Family.BE_QUICK_OR_BE_DEAD, 3)
        assert late_sharp == pytest.approx(0.64, abs=0.10)

    def test_expansion_bias(self, full_study):
        assert full_study.change_mix.overall_expansion_fraction > 0.6
        assert full_study.change_mix.overall_table_granule_fraction > 0.5

    def test_reproducibility_under_seed(self):
        population = {Pattern.FLATLINER: 2, Pattern.SIESTA: 1,
                      Pattern.RADICAL_SIGN: 2}
        a = generate_corpus(seed=77, population=population)
        b = generate_corpus(seed=77, population=population)
        results_a = run_study(records_from_corpus(a))
        results_b = run_study(records_from_corpus(b))
        assert results_a.stats34 == results_b.stats34


class TestFailureInjection:
    """Corrupted DDL mid-history must not break the pipeline."""

    def test_noisy_history_still_profiles(self):
        good = "CREATE TABLE t (a INT);"
        noisy = good + "\nTHIS IS NOT SQL AT ALL ((;\nINSERT INTO x;"
        commits = [
            Commit("a", datetime(2020, 1, 1), good),
            Commit("b", datetime(2020, 6, 1), noisy),
        ]
        history = SchemaHistory("noisy", commits,
                                project_end=datetime(2021, 6, 1))
        profile = ProjectProfile.from_history(history)
        assert profile.total_activity == 1  # noise adds no change
        assert history.versions()[1].parse_issues > 0

    def test_schema_destroyed_and_recreated(self):
        v1 = "CREATE TABLE t (a INT, b INT);"
        v2 = "-- everything dropped"
        v3 = "CREATE TABLE t (a INT, b INT, c INT);"
        commits = [
            Commit("1", datetime(2020, 1, 1), v1),
            Commit("2", datetime(2020, 5, 1), v2),
            Commit("3", datetime(2020, 9, 1), v3),
        ]
        history = SchemaHistory("reborn", commits,
                                project_end=datetime(2021, 2, 1))
        profile = ProjectProfile.from_history(history)
        # 2 born, 2 dropped, 3 born again.
        assert profile.total_activity == 7
        labeled = label_profile(profile)
        assert classify(labeled) is not None
