"""Integration tests on realistic production-style SQL dumps.

Three fixture dumps mimic the file formats found in FOSS repositories:
a WordPress-style MySQL dump, a pg_dump-style PostgreSQL dump and a
SQLite ``.dump``. The parser must extract the full logical schema and
only skip the genuinely non-DDL noise.
"""

from pathlib import Path

import pytest

from repro.schema.builder import SchemaBuilder
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.parser import parse_script

FIXTURES = Path(__file__).parent.parent / "fixtures"


def load(name, dialect):
    text = (FIXTURES / name).read_text()
    script = parse_script(text, dialect)
    builder = SchemaBuilder()
    builder.apply_script(script)
    return script, builder.snapshot()


class TestWordPressDump:
    @pytest.fixture(scope="class")
    def parsed(self):
        return load("wordpress_style.sql", Dialect.MYSQL)

    def test_all_tables_extracted(self, parsed):
        _script, schema = parsed
        assert set(schema.table_names) == {
            "wp_users", "wp_posts", "wp_comments", "wp_options"}

    def test_no_parse_errors(self, parsed):
        script, _schema = parsed
        assert all(s.reason == "non-ddl" for s in script.skipped)

    def test_column_details(self, parsed):
        _script, schema = parsed
        users = schema.table("wp_users")
        assert len(users) == 10
        assert users.primary_key == ("id",)
        assert users.attribute("user_login").not_null

    def test_display_width_and_unsigned(self, parsed):
        _script, schema = parsed
        id_col = schema.table("wp_posts").attribute("id")
        assert id_col.data_type.name == "BIGINT"
        assert id_col.data_type.unsigned
        assert id_col.data_type.params == ()  # (20) width stripped

    def test_unique_key_recorded(self, parsed):
        _script, schema = parsed
        assert ("option_name",) in schema.table("wp_options").unique_keys

    def test_prefix_length_keys_ignored_logically(self, parsed):
        _script, schema = parsed
        posts = schema.table("wp_posts")
        assert "post_name" in posts  # despite the (191) prefix key


class TestPgDump:
    @pytest.fixture(scope="class")
    def parsed(self):
        return load("pgdump_style.sql", Dialect.POSTGRES)

    def test_tables_and_view(self, parsed):
        _script, schema = parsed
        assert set(schema.table_names) == {"projects", "tasks", "people"}
        assert schema.views == ("open_tasks",)

    def test_constraints_applied_via_alter(self, parsed):
        _script, schema = parsed
        tasks = schema.table("tasks")
        assert tasks.primary_key == ("id",)
        targets = {fk.ref_table for fk in tasks.foreign_keys}
        assert targets == {"projects", "people"}
        assert tasks.attribute("project_id").in_foreign_key

    def test_multiword_types(self, parsed):
        _script, schema = parsed
        tasks = schema.table("tasks")
        assert tasks.attribute("estimate").data_type.name == "DOUBLE"
        assert tasks.attribute("due_at").data_type.name \
            == "TIMESTAMP WITH TIME ZONE"
        projects = schema.table("projects")
        assert projects.attribute("name").data_type.name == "VARCHAR"
        assert projects.attribute("created_at").data_type.name \
            == "TIMESTAMP"

    def test_noise_skipped_not_crashed(self, parsed):
        script, _schema = parsed
        reasons = {s.reason for s in script.skipped}
        assert reasons <= {"non-ddl", "parse-error"}
        # SET/SELECT/COPY/GRANT/sequence noise must be present as skips.
        assert len(script.skipped) >= 5


class TestSqliteDump:
    @pytest.fixture(scope="class")
    def parsed(self):
        return load("sqlite_style.sql", Dialect.SQLITE)

    def test_tables(self, parsed):
        _script, schema = parsed
        assert set(schema.table_names) == {
            "config", "notes", "tags", "note_tags"}

    def test_typeless_column(self, parsed):
        _script, schema = parsed
        assert schema.table("config").attribute("value").data_type is None

    def test_autoincrement(self, parsed):
        script, _schema = parsed
        notes = next(s for s in script.statements
                     if getattr(s, "name", "") == "notes")
        assert notes.columns[0].auto_increment

    def test_composite_pk(self, parsed):
        _script, schema = parsed
        assert schema.table("note_tags").primary_key \
            == ("note_id", "tag_id")

    def test_fk_participation(self, parsed):
        _script, schema = parsed
        link = schema.table("note_tags")
        assert link.attribute("note_id").in_foreign_key
        assert link.attribute("tag_id").in_foreign_key
