"""Integration: the study run fully blind (no generator ground truth).

``records_from_histories`` classifies every history from its measured
labels alone — the situation a user with a real GitHub corpus is in.
The paper's headline shapes must survive without the ground-truth
assignments (only the 8 injected exception projects may drift to a
neighboring pattern).
"""

import pytest

from repro.patterns.taxonomy import Family, Pattern, family_of
from repro.study.pipeline import (
    records_from_corpus,
    records_from_histories,
    run_study,
)


@pytest.fixture(scope="module")
def blind_results(full_corpus):
    histories = [p.history for p in full_corpus]
    return run_study(records_from_histories(histories))


class TestBlindStudy:
    def test_everything_classified(self, blind_results):
        assert blind_results.total == 151
        unclassified = sum(1 for r in blind_results.records
                           if r.pattern is Pattern.UNCLASSIFIED)
        assert unclassified == 0

    def test_agreement_with_ground_truth(self, full_corpus,
                                         blind_results):
        truth = {p.name: p.intended_pattern for p in full_corpus}
        disagreements = [r.name for r in blind_results.records
                         if r.pattern is not truth[r.name]]
        # Only the 8 injected exception projects may land elsewhere.
        exceptional = {p.name for p in full_corpus if p.is_exception}
        assert set(disagreements) <= exceptional
        assert len(disagreements) <= 8

    def test_family_shares_survive(self, blind_results):
        by_family = {family: 0 for family in Family}
        for record in blind_results.records:
            by_family[family_of(record.pattern)] += 1
        total = blind_results.total
        assert by_family[Family.BE_QUICK_OR_BE_DEAD] / total \
            == pytest.approx(2 / 3, abs=0.06)
        assert by_family[Family.STAIRWAY_TO_HEAVEN] / total \
            == pytest.approx(0.25, abs=0.06)
        assert by_family[Family.SCARED_TO_FALL_ASLEEP_AGAIN] / total \
            == pytest.approx(0.11, abs=0.06)

    def test_exception_flags_only_on_near_misses(self, blind_results):
        flagged = [r for r in blind_results.records if r.is_exception]
        # Tolerant classification flags near misses; strict matches
        # never carry the flag.
        from repro.patterns.classifier import classify
        for record in flagged:
            assert classify(record.labeled) is Pattern.UNCLASSIFIED

    def test_headline_stats_match_ground_truth_study(self, full_study,
                                                     blind_results):
        # Label-level statistics are classification-independent: they
        # must be identical between the two runs.
        assert blind_results.stats34 == full_study.stats34
        assert blind_results.table1.rows == full_study.table1.rows

    def test_tree_still_separates(self, blind_results):
        assert len(blind_results.tree_misclassified) <= 8
