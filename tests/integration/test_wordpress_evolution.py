"""Integration scenario: a WordPress-like project evolving over years.

Builds a multi-year history on top of the WordPress-style fixture dump
(early growth, a plugin era adding tables mid-life, then freeze) and
runs the complete pipeline on it — the realistic end-to-end scenario a
downstream user would hit first.
"""

from datetime import datetime
from pathlib import Path

import pytest

from repro import quick_profile
from repro.diff import diff_schemas, migration_script
from repro.history.commit import Commit
from repro.history.repository import SchemaHistory
from repro.history.sizes import size_series
from repro.metrics.tables import rigidity_share, table_lives
from repro.patterns.classifier import classify
from repro.patterns.taxonomy import Pattern
from repro.schema.builder import build_schema
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.parser import parse_script

FIXTURES = Path(__file__).parent.parent / "fixtures"

_PLUGIN_ERA = """
CREATE TABLE `wp_woocommerce_orders` (
  `id` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `status` varchar(20) NOT NULL DEFAULT 'pending',
  `customer_id` bigint(20) unsigned NOT NULL DEFAULT 0,
  `total_amount` decimal(26,8) DEFAULT NULL,
  `date_created` datetime DEFAULT NULL,
  PRIMARY KEY (`id`),
  KEY `status` (`status`)
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;

CREATE TABLE `wp_woocommerce_order_items` (
  `order_item_id` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `order_item_name` text NOT NULL,
  `order_id` bigint(20) unsigned NOT NULL,
  PRIMARY KEY (`order_item_id`),
  KEY `order_id` (`order_id`)
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;
"""


@pytest.fixture(scope="module")
def history():
    base = (FIXTURES / "wordpress_style.sql").read_text()
    with_plugin = base + _PLUGIN_ERA
    refactored = with_plugin.replace(
        "`user_status` int(11) NOT NULL DEFAULT 0",
        "`user_status` bigint NOT NULL DEFAULT 0")
    commits = [
        Commit("v1", datetime(2016, 2, 10), base),
        Commit("v2", datetime(2016, 3, 5), base),      # content-only
        Commit("v3", datetime(2017, 1, 20), with_plugin),
        Commit("v4", datetime(2017, 2, 14), refactored),
    ]
    return SchemaHistory("wp-like", commits,
                         project_start=datetime(2016, 1, 1),
                         project_end=datetime(2021, 12, 31),
                         dialect=Dialect.MYSQL)


class TestWordPressScenario:
    def test_heartbeat_shape(self, history):
        labeled = quick_profile(history)
        profile = labeled.profile
        # Birth carries the 4 fixture tables; plugin era adds 8 attrs;
        # the refactor changes one type.
        assert profile.totals.schema_size_at_birth == 38
        assert profile.heartbeat.monthly[profile.birth_month] == 38
        assert profile.total_activity == 38 + 8 + 1

    def test_classified_pattern(self, history):
        labeled = quick_profile(history)
        # Birth at ~2 % of life, top band reached with the plugin era at
        # ~19 % of a 6-year project: a textbook Radical Sign.
        assert classify(labeled) is Pattern.RADICAL_SIGN

    def test_size_series(self, history):
        series = size_series(history)
        assert series.tables[1] == 4
        assert series.final_tables == 6
        assert series.growth_months() != ()

    def test_table_lives(self, history):
        lives = table_lives(history)
        assert len(lives) == 6
        assert rigidity_share(lives) >= 4 / 6  # only wp_users changed
        woo = [l for l in lives if "woocommerce" in l.name]
        assert all(l.birth_month == 12 for l in woo)

    def test_migration_between_eras(self, history):
        versions = history.versions()
        old_schema = versions[0].schema
        new_schema = versions[-1].schema
        script = migration_script(old_schema, new_schema,
                                  dialect=Dialect.MYSQL)
        # Apply and verify closure.
        from repro.schema.builder import SchemaBuilder
        builder = SchemaBuilder()
        builder.apply_script(
            parse_script(history.commits[0].ddl_text, Dialect.MYSQL))
        builder.apply_script(parse_script(script, Dialect.MYSQL))
        closure = diff_schemas(builder.snapshot(), new_schema)
        assert closure.total_affected == 0
