--
-- PostgreSQL database dump (pg_dump style, abridged, synthetic)
--

SET statement_timeout = 0;
SET client_encoding = 'UTF8';
SET standard_conforming_strings = on;
SELECT pg_catalog.set_config('search_path', '', false);

CREATE TABLE public.projects (
    id integer NOT NULL,
    name character varying(120) NOT NULL,
    description text,
    budget numeric(12,2) DEFAULT 0.00,
    started_on date,
    is_active boolean DEFAULT true NOT NULL,
    created_at timestamp without time zone DEFAULT now()
);

ALTER TABLE public.projects OWNER TO appuser;

CREATE SEQUENCE public.projects_id_seq
    AS integer
    START WITH 1
    INCREMENT BY 1
    NO MINVALUE
    NO MAXVALUE
    CACHE 1;

ALTER SEQUENCE public.projects_id_seq OWNED BY public.projects.id;

CREATE TABLE public.tasks (
    id bigint NOT NULL,
    project_id integer NOT NULL,
    title character varying(200) NOT NULL,
    state character varying(20) DEFAULT 'open'::character varying,
    estimate double precision,
    due_at timestamp with time zone,
    assignee_id integer
);

CREATE TABLE public.people (
    id integer NOT NULL,
    full_name character varying(160) NOT NULL,
    email character varying(255)
);

ALTER TABLE ONLY public.projects
    ADD CONSTRAINT projects_pkey PRIMARY KEY (id);

ALTER TABLE ONLY public.tasks
    ADD CONSTRAINT tasks_pkey PRIMARY KEY (id);

ALTER TABLE ONLY public.people
    ADD CONSTRAINT people_pkey PRIMARY KEY (id);

ALTER TABLE ONLY public.tasks
    ADD CONSTRAINT tasks_project_id_fkey FOREIGN KEY (project_id)
    REFERENCES public.projects(id) ON DELETE CASCADE;

ALTER TABLE ONLY public.tasks
    ADD CONSTRAINT tasks_assignee_fkey FOREIGN KEY (assignee_id)
    REFERENCES public.people(id) ON DELETE SET NULL;

CREATE INDEX tasks_state_idx ON public.tasks USING btree (state);

CREATE VIEW public.open_tasks AS
 SELECT t.id, t.title, p.name AS project_name
   FROM public.tasks t
   JOIN public.projects p ON p.id = t.project_id
  WHERE t.state = 'open';

COPY public.people (id, full_name, email) FROM stdin;
\.

GRANT SELECT ON TABLE public.open_tasks TO readonly;
