-- SQLite .dump style (abridged, synthetic)
PRAGMA foreign_keys=OFF;
BEGIN TRANSACTION;
CREATE TABLE config (key TEXT PRIMARY KEY, value);
CREATE TABLE notes (
  id INTEGER PRIMARY KEY AUTOINCREMENT,
  title TEXT NOT NULL,
  body TEXT,
  pinned BOOLEAN DEFAULT 0,
  created_at TIMESTAMP DEFAULT CURRENT_TIMESTAMP
);
CREATE TABLE tags (
  id INTEGER PRIMARY KEY,
  label TEXT UNIQUE NOT NULL
);
CREATE TABLE note_tags (
  note_id INTEGER REFERENCES notes (id) ON DELETE CASCADE,
  tag_id INTEGER REFERENCES tags (id) ON DELETE CASCADE,
  PRIMARY KEY (note_id, tag_id)
);
INSERT INTO config VALUES('schema_version','7');
INSERT INTO notes VALUES(1,'hello','world',0,'2021-01-01');
CREATE INDEX idx_notes_pinned ON notes (pinned);
COMMIT;
