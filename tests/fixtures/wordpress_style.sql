-- WordPress-style MySQL dump (abridged, synthetic data)
-- MySQL dump 10.13  Distrib 8.0.32
/*!40101 SET NAMES utf8mb4 */;
SET SQL_MODE = "NO_AUTO_VALUE_ON_ZERO";
SET time_zone = "+00:00";

DROP TABLE IF EXISTS `wp_users`;
CREATE TABLE `wp_users` (
  `ID` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `user_login` varchar(60) NOT NULL DEFAULT '',
  `user_pass` varchar(255) NOT NULL DEFAULT '',
  `user_nicename` varchar(50) NOT NULL DEFAULT '',
  `user_email` varchar(100) NOT NULL DEFAULT '',
  `user_url` varchar(100) NOT NULL DEFAULT '',
  `user_registered` datetime NOT NULL DEFAULT '0000-00-00 00:00:00',
  `user_activation_key` varchar(255) NOT NULL DEFAULT '',
  `user_status` int(11) NOT NULL DEFAULT 0,
  `display_name` varchar(250) NOT NULL DEFAULT '',
  PRIMARY KEY (`ID`),
  KEY `user_login_key` (`user_login`),
  KEY `user_nicename` (`user_nicename`),
  KEY `user_email` (`user_email`)
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4 COLLATE=utf8mb4_unicode_520_ci;

CREATE TABLE `wp_posts` (
  `ID` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `post_author` bigint(20) unsigned NOT NULL DEFAULT 0,
  `post_date` datetime NOT NULL DEFAULT '0000-00-00 00:00:00',
  `post_content` longtext NOT NULL,
  `post_title` text NOT NULL,
  `post_excerpt` text NOT NULL,
  `post_status` varchar(20) NOT NULL DEFAULT 'publish',
  `comment_status` varchar(20) NOT NULL DEFAULT 'open',
  `post_name` varchar(200) NOT NULL DEFAULT '',
  `post_modified` datetime NOT NULL DEFAULT '0000-00-00 00:00:00',
  `post_parent` bigint(20) unsigned NOT NULL DEFAULT 0,
  `guid` varchar(255) NOT NULL DEFAULT '',
  `menu_order` int(11) NOT NULL DEFAULT 0,
  `post_type` varchar(20) NOT NULL DEFAULT 'post',
  `comment_count` bigint(20) NOT NULL DEFAULT 0,
  PRIMARY KEY (`ID`),
  KEY `post_name` (`post_name`(191)),
  KEY `type_status_date` (`post_type`,`post_status`,`post_date`,`ID`),
  KEY `post_parent` (`post_parent`),
  KEY `post_author` (`post_author`)
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;

CREATE TABLE `wp_comments` (
  `comment_ID` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `comment_post_ID` bigint(20) unsigned NOT NULL DEFAULT 0,
  `comment_author` tinytext NOT NULL,
  `comment_author_email` varchar(100) NOT NULL DEFAULT '',
  `comment_date` datetime NOT NULL DEFAULT '0000-00-00 00:00:00',
  `comment_content` text NOT NULL,
  `comment_approved` varchar(20) NOT NULL DEFAULT '1',
  `comment_parent` bigint(20) unsigned NOT NULL DEFAULT 0,
  `user_id` bigint(20) unsigned NOT NULL DEFAULT 0,
  PRIMARY KEY (`comment_ID`),
  KEY `comment_post_ID` (`comment_post_ID`),
  KEY `comment_approved_date_gmt` (`comment_approved`,`comment_date`)
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;

CREATE TABLE `wp_options` (
  `option_id` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `option_name` varchar(191) NOT NULL DEFAULT '',
  `option_value` longtext NOT NULL,
  `autoload` varchar(20) NOT NULL DEFAULT 'yes',
  PRIMARY KEY (`option_id`),
  UNIQUE KEY `option_name` (`option_name`),
  KEY `autoload` (`autoload`)
) ENGINE=InnoDB AUTO_INCREMENT=123 DEFAULT CHARSET=utf8mb4;

INSERT INTO `wp_options` VALUES (1,'siteurl','http://example.org','yes');
INSERT INTO `wp_options` VALUES (2,'blogname','Demo ''quoted'' blog','yes');

LOCK TABLES `wp_users` WRITE;
UNLOCK TABLES;
