"""Unit/integration tests for the study pipeline."""

import pytest

from repro.analysis.records import StudyRecord
from repro.errors import AnalysisError
from repro.patterns.taxonomy import PAPER_POPULATION, Pattern
from repro.study.pipeline import (
    records_from_corpus,
    records_from_histories,
    run_study,
)


class TestRecordsFromCorpus:
    def test_one_record_per_project(self, small_corpus):
        records = records_from_corpus(small_corpus)
        assert len(records) == len(small_corpus)
        assert all(isinstance(r, StudyRecord) for r in records)

    def test_clean_corpus_no_exceptions(self, small_corpus):
        records = records_from_corpus(small_corpus)
        assert not any(r.is_exception for r in records)

    def test_pattern_is_ground_truth(self, small_corpus):
        records = records_from_corpus(small_corpus)
        for project, record in zip(small_corpus, records):
            assert record.pattern is project.intended_pattern


class TestRecordsFromHistories:
    def test_blind_classification(self, small_corpus):
        histories = [p.history for p in small_corpus]
        records = records_from_histories(histories)
        intended = [p.intended_pattern for p in small_corpus]
        assigned = [r.pattern for r in records]
        assert assigned == intended  # clean corpus: blind = truth


class TestRunStudy:
    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            run_study([])

    def test_full_study_bundle(self, full_study):
        results = full_study
        assert results.total == 151
        assert results.table1.total == 151
        assert results.table2.total == 151
        assert results.stats34.total == 151
        assert len(results.prediction.bucket_totals) == 4

    def test_population_reproduced(self, full_study):
        population = {row[0]: row[1] for row in full_study.table2.rows}
        assert population == PAPER_POPULATION

    def test_decision_tree_few_errors(self, full_study):
        # Paper: 4 of 151 misclassified. Shape: a small handful.
        assert len(full_study.tree_misclassified) <= 6

    def test_strict_agreement_high(self, full_study):
        # All non-exception projects classify strictly to their pattern.
        exceptions = sum(
            1 for r in full_study.records if r.is_exception)
        assert full_study.strict_agreement == 151 - exceptions

    def test_top_tail_anticorrelation(self, full_study):
        rho = full_study.correlations[
            ("PointOfTopBand_pctPUP", "IntervalTopToEnd_pctPUP")]
        assert rho < -0.95  # paper: "extremely strongly anti-correlated"

    def test_birth_top_correlation(self, full_study):
        rho = full_study.correlations[
            ("PointOfBirth_pctPUP", "PointOfTopBand_pctPUP")]
        assert 0.4 < rho < 0.95  # paper: 0.61

    def test_active_months_normalizations_correlate(self, full_study):
        rho = full_study.correlations[
            ("ActiveGrowthMonths", "ActiveMonths_pctPUP")]
        assert rho > 0.8

    def test_centroids_cover_every_pattern(self, full_study):
        assert set(full_study.centroids.mdc) \
            == {p.value for p in PAPER_POPULATION}

    def test_mdc_in_paper_range(self, full_study):
        # Paper: MDC between 0.06 and 1.25 for 20-point vectors.
        for value in full_study.centroids.mdc.values():
            assert 0.0 <= value <= 1.6

    def test_all_measures_non_normal(self, full_study):
        assert full_study.normality.all_non_normal
        assert full_study.normality.max_p_value < 1e-3

    def test_coverage_no_unexpected_sharing(self, full_study):
        # The paper acknowledges a couple of shared spots (Siesta/RC and
        # the exception cells); sharing must stay marginal.
        assert len(full_study.coverage.shared_cells) <= 4
