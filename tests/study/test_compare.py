"""Unit tests for study comparison."""

import pytest

from repro.corpus.generator import generate_corpus
from repro.patterns.taxonomy import Family, Pattern
from repro.study.compare import compare_studies
from repro.study.pipeline import records_from_corpus, run_study

QUIET_MIX = {Pattern.FLATLINER: 4, Pattern.RADICAL_SIGN: 4,
             Pattern.SIESTA: 2}
LIVELY_MIX = {Pattern.REGULARLY_CURATED: 5, Pattern.SMOKING_FUNNEL: 3,
              Pattern.QUANTUM_STEPS: 2}


@pytest.fixture(scope="module")
def quiet_results():
    return run_study(records_from_corpus(
        generate_corpus(seed=6, population=QUIET_MIX,
                        with_exceptions=False)))


@pytest.fixture(scope="module")
def lively_results():
    return run_study(records_from_corpus(
        generate_corpus(seed=6, population=LIVELY_MIX,
                        with_exceptions=False)))


class TestCompareStudies:
    def test_self_comparison_is_zero(self, quiet_results):
        delta = compare_studies(quiet_results, quiet_results)
        assert delta.zero_agm_share_delta == 0.0
        assert delta.vault_share_delta == 0.0
        assert delta.median_activity_delta == 0.0
        assert delta.tree_errors_delta == 0
        assert all(v == 0.0 for v in delta.family_share_delta.values())

    def test_lively_vs_quiet_direction(self, quiet_results,
                                       lively_results):
        delta = compare_studies(quiet_results, lively_results)
        assert delta.livelier
        assert delta.median_activity_delta > 0
        assert delta.family_share_delta[Family.STAIRWAY_TO_HEAVEN] > 0
        assert delta.family_share_delta[Family.BE_QUICK_OR_BE_DEAD] < 0

    def test_totals_recorded(self, quiet_results, lively_results):
        delta = compare_studies(quiet_results, lively_results)
        assert delta.baseline_total == 10
        assert delta.variant_total == 10

    def test_antisymmetry(self, quiet_results, lively_results):
        forward = compare_studies(quiet_results, lively_results)
        backward = compare_studies(lively_results, quiet_results)
        assert forward.vault_share_delta \
            == pytest.approx(-backward.vault_share_delta)
        assert forward.median_activity_delta \
            == pytest.approx(-backward.median_activity_delta)
