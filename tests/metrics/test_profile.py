"""Unit tests for ProjectProfile."""

from datetime import datetime

from repro.metrics.profile import ProjectProfile
from tests.conftest import make_history


class TestFromHistory:
    def test_bundles_everything(self, simple_history):
        profile = ProjectProfile.from_history(simple_history)
        assert profile.name == "test-project"
        assert profile.pup_months == 24
        assert profile.birth_month == 0
        assert profile.total_activity == 6
        assert len(profile.vector) == 20
        assert profile.heartbeat.total == 6
        assert profile.source is None

    def test_birth_is_first_commit_month_even_if_empty_ddl(self):
        # First commit holds comments only: schema file exists but no
        # attributes — birth is still the file's appearance.
        history = make_history(["-- just a comment",
                                "CREATE TABLE t (a INT);"])
        profile = ProjectProfile.from_history(history)
        assert profile.birth_month == 0
        assert profile.landmarks.birth_volume_fraction == 0.0

    def test_late_schema_birth_vs_project_start(self):
        history = make_history(
            ["CREATE TABLE t (a INT);"],
            project_start=datetime(2019, 1, 1),
            project_end=datetime(2021, 12, 31))
        profile = ProjectProfile.from_history(history)
        assert profile.birth_month == 12  # commits start in 2020-01
        assert profile.pup_months == 36

    def test_source_attached(self, simple_history):
        import random
        from repro.history.sourcecode import synthetic_source_series
        source = synthetic_source_series(simple_history.pup_months,
                                         random.Random(0))
        profile = ProjectProfile.from_history(simple_history,
                                              source=source)
        assert profile.source is source

    def test_custom_vector_points(self, simple_history):
        profile = ProjectProfile.from_history(simple_history,
                                              vector_points=10)
        assert len(profile.vector) == 10
