"""Unit tests for heartbeat vectors and vector helpers."""

import math

import pytest

from repro.errors import MetricError
from repro.history.heartbeat import ActivitySeries
from repro.metrics.timeseries import (
    euclidean_distance,
    heartbeat_vector,
    mean_vector,
)


class TestHeartbeatVector:
    def test_default_20_points(self):
        vector = heartbeat_vector(ActivitySeries((1, 2, 3)))
        assert len(vector) == 20

    def test_flatliner_vector_all_ones(self):
        vector = heartbeat_vector(ActivitySeries((5, 0, 0, 0)))
        assert vector == tuple([1.0] * 20)

    def test_late_riser_vector_mostly_zero(self):
        monthly = [0] * 19 + [10]
        vector = heartbeat_vector(ActivitySeries(tuple(monthly)))
        assert vector[0] == 0.0
        assert sum(1 for v in vector if v == 0.0) >= 18

    def test_custom_points(self):
        assert len(heartbeat_vector(ActivitySeries((1,)), points=5)) == 5


class TestEuclidean:
    def test_zero_distance(self):
        assert euclidean_distance((1.0, 2.0), (1.0, 2.0)) == 0.0

    def test_known_distance(self):
        assert euclidean_distance((0, 0), (3, 4)) == 5.0

    def test_length_mismatch_raises(self):
        with pytest.raises(MetricError):
            euclidean_distance((1,), (1, 2))

    def test_symmetry(self):
        a, b = (0.1, 0.9, 0.4), (0.7, 0.2, 0.5)
        assert euclidean_distance(a, b) == euclidean_distance(b, a)

    def test_triangle_inequality(self):
        a, b, c = (0, 0), (1, 1), (2, 0)
        assert euclidean_distance(a, c) <= (
            euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-12)


class TestMeanVector:
    def test_mean(self):
        assert mean_vector([(0.0, 1.0), (1.0, 0.0)]) == (0.5, 0.5)

    def test_single_vector(self):
        assert mean_vector([(0.3, 0.7)]) == (0.3, 0.7)

    def test_empty_raises(self):
        with pytest.raises(MetricError):
            mean_vector([])

    def test_ragged_raises(self):
        with pytest.raises(MetricError):
            mean_vector([(1.0,), (1.0, 2.0)])

    def test_mean_within_hull(self):
        vectors = [(0.0, 0.2), (1.0, 0.8), (0.5, 0.5)]
        mean = mean_vector(vectors)
        for dim in range(2):
            values = [v[dim] for v in vectors]
            assert min(values) <= mean[dim] <= max(values)
