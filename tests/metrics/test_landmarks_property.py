"""Property tests for landmark invariants over arbitrary heartbeats."""

from hypothesis import given, settings, strategies as st

from repro.history.heartbeat import ActivitySeries
from repro.metrics.landmarks import VAULT_FRACTION, compute_landmarks

# Series with at least one active month (so birth is derivable).
active_series = st.lists(st.integers(0, 30), min_size=1,
                         max_size=80).filter(lambda m: sum(m) > 0)


@settings(max_examples=200, deadline=None)
@given(monthly=active_series)
def test_landmark_ordering(monthly):
    marks = compute_landmarks(ActivitySeries(tuple(monthly)))
    assert 0 <= marks.birth_month <= marks.top_band_month \
        < marks.pup_months


@settings(max_examples=200, deadline=None)
@given(monthly=active_series)
def test_percentages_bounded(monthly):
    marks = compute_landmarks(ActivitySeries(tuple(monthly)))
    for value in (marks.birth_pct, marks.top_band_pct,
                  marks.interval_birth_to_top_pct,
                  marks.interval_top_to_end_pct,
                  marks.birth_volume_fraction,
                  marks.active_pct_growth, marks.active_pct_pup):
        assert -1e-9 <= value <= 1 + 1e-9


@settings(max_examples=200, deadline=None)
@given(monthly=active_series)
def test_vault_consistent_with_interval(monthly):
    marks = compute_landmarks(ActivitySeries(tuple(monthly)))
    assert marks.has_vault \
        == (marks.interval_birth_to_top_pct < VAULT_FRACTION)


@settings(max_examples=200, deadline=None)
@given(monthly=active_series)
def test_agm_bounded_by_interior(monthly):
    marks = compute_landmarks(ActivitySeries(tuple(monthly)))
    interior = max(marks.interval_birth_to_top_months - 1, 0)
    assert 0 <= marks.active_growth_months <= interior


@settings(max_examples=200, deadline=None)
@given(monthly=active_series)
def test_cumulative_at_top_is_at_least_90pct(monthly):
    series = ActivitySeries(tuple(monthly))
    marks = compute_landmarks(series)
    fractions = series.cumulative_fraction()
    assert fractions[marks.top_band_month] >= 0.9 - 1e-9
    if marks.top_band_month > marks.birth_month:
        assert fractions[marks.top_band_month - 1] < 0.9


@settings(max_examples=200, deadline=None)
@given(monthly=active_series)
def test_tail_and_point_sum_to_whole(monthly):
    marks = compute_landmarks(ActivitySeries(tuple(monthly)))
    if marks.pup_months > 1:
        assert marks.top_band_pct + marks.interval_top_to_end_pct \
            == pytest_approx_one()
    else:
        assert marks.interval_top_to_end_pct == 0.0


def pytest_approx_one():
    import pytest
    return pytest.approx(1.0)


@settings(max_examples=200, deadline=None)
@given(monthly=active_series, scale=st.integers(2, 7))
def test_birth_volume_invariant_under_scaling(monthly, scale):
    """Multiplying all activity by a constant leaves every fractional
    landmark unchanged."""
    base = compute_landmarks(ActivitySeries(tuple(monthly)))
    scaled = compute_landmarks(ActivitySeries(
        tuple(v * scale for v in monthly)))
    assert base.birth_month == scaled.birth_month
    assert base.top_band_month == scaled.top_band_month
    assert abs(base.birth_volume_fraction
               - scaled.birth_volume_fraction) < 1e-9
    assert base.active_growth_months == scaled.active_growth_months
