"""Unit tests for per-table lives."""

from repro.metrics.tables import rigidity_share, table_lives
from tests.conftest import make_history


def lives_of(ddl_texts, **kwargs):
    return table_lives(make_history(ddl_texts, **kwargs))


class TestTableLives:
    def test_single_frozen_table(self):
        lives = lives_of(["CREATE TABLE t (a INT, b INT);"])
        assert len(lives) == 1
        life = lives[0]
        assert life.name == "t"
        assert life.birth_month == 0
        assert life.is_alive
        assert life.birth_size == 2
        assert life.final_size == 2
        assert life.update_events == 0
        assert life.duration_months is None

    def test_dropped_table_closed(self):
        lives = lives_of([
            "CREATE TABLE t (a INT);",
            "-- gone",
        ])
        assert len(lives) == 1
        assert lives[0].death_month == 1
        assert lives[0].duration_months == 1
        assert not lives[0].is_alive

    def test_updates_tracked(self):
        v1 = "CREATE TABLE t (a INT);"
        v2 = "CREATE TABLE t (a INT, b INT);"
        v3 = "CREATE TABLE t (a TEXT, b INT);"
        lives = lives_of([v1, v2, v3])
        life = lives[0]
        assert life.update_events == 2  # injection + type change
        assert life.active_months == 2
        assert life.final_size == 2

    def test_recreated_table_two_lives(self):
        v1 = "CREATE TABLE t (a INT);"
        v2 = "-- dropped"
        v3 = "CREATE TABLE t (a INT, b INT, c INT);"
        lives = lives_of([v1, v2, v3])
        assert len(lives) == 2
        first, second = lives
        assert first.death_month == 1
        assert second.birth_month == 2
        assert second.birth_size == 3
        assert second.is_alive

    def test_multiple_tables_sorted_by_birth(self):
        v1 = "CREATE TABLE b (x INT);"
        v2 = v1 + " CREATE TABLE a (y INT);"
        lives = lives_of([v1, v2])
        assert [l.name for l in lives] == ["b", "a"]
        assert [l.birth_month for l in lives] == [0, 1]


class TestRigidityShare:
    def test_all_rigid(self):
        lives = lives_of(["CREATE TABLE t (a INT); "
                          "CREATE TABLE u (b INT);"])
        assert rigidity_share(lives) == 1.0

    def test_mixed(self):
        v1 = "CREATE TABLE t (a INT); CREATE TABLE u (b INT);"
        v2 = "CREATE TABLE t (a INT, extra INT); CREATE TABLE u (b INT);"
        lives = lives_of([v1, v2])
        assert rigidity_share(lives) == 0.5

    def test_empty_list(self):
        assert rigidity_share([]) == 0.0

    def test_corpus_tables_mostly_rigid(self, small_corpus):
        # The table-level aversion-to-change trait must emerge from the
        # generated corpus too.
        all_lives = []
        for project in small_corpus:
            all_lives.extend(table_lives(project.history))
        assert rigidity_share(all_lives) > 0.5
