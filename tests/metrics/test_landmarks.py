"""Unit tests for landmark computation."""

import pytest

from repro.errors import MetricError
from repro.history.heartbeat import ActivitySeries
from repro.metrics.landmarks import compute_landmarks


def landmarks(monthly, birth=None):
    return compute_landmarks(ActivitySeries(tuple(monthly)),
                             birth_month=birth)


class TestBirth:
    def test_birth_from_first_activity(self):
        marks = landmarks([0, 0, 5, 0])
        assert marks.birth_month == 2

    def test_explicit_birth_wins(self):
        marks = landmarks([0, 0, 5, 0], birth=1)
        assert marks.birth_month == 1
        assert marks.birth_volume_fraction == 0.0

    def test_zero_activity_without_birth_raises(self):
        with pytest.raises(MetricError):
            landmarks([0, 0, 0])

    def test_zero_activity_with_birth_is_degenerate_full(self):
        marks = landmarks([0, 0, 0], birth=1)
        assert marks.birth_volume_fraction == 1.0
        assert marks.top_band_month == 1

    def test_birth_out_of_range_raises(self):
        with pytest.raises(MetricError):
            landmarks([1, 0], birth=5)

    def test_birth_volume_fraction(self):
        marks = landmarks([3, 0, 1])
        assert marks.birth_volume_fraction == 0.75

    def test_born_at_v0_flag(self):
        assert landmarks([5]).born_at_v0
        assert not landmarks([0, 5]).born_at_v0


class TestTopBand:
    def test_immediate_top(self):
        marks = landmarks([10, 1])  # 10/11 > 0.9
        assert marks.top_band_month == 0
        assert marks.top_at_v0

    def test_delayed_top(self):
        marks = landmarks([5, 0, 4, 1])
        assert marks.top_band_month == 2

    def test_exact_90_percent_counts(self):
        marks = landmarks([9, 1])
        assert marks.top_band_month == 0

    def test_top_before_birth_raises(self):
        # Activity before the declared birth is inconsistent input.
        with pytest.raises(MetricError):
            landmarks([100, 0, 1], birth=2)


class TestIntervalsAndPcts:
    def test_pct_normalization(self):
        marks = landmarks([0, 0, 0, 0, 5], birth=4)
        assert marks.birth_pct == 1.0
        assert marks.pup_months == 5

    def test_single_month_project(self):
        marks = landmarks([7])
        assert marks.birth_pct == 0.0
        assert marks.interval_birth_to_top_pct == 0.0
        assert marks.interval_top_to_end_pct == 0.0

    def test_tail_pct(self):
        marks = landmarks([10, 0, 0, 0, 0])  # top at month 0, 5 months
        assert marks.interval_top_to_end_pct == 1.0

    def test_interval_months(self):
        marks = landmarks([1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9])
        assert marks.interval_birth_to_top_months == 10
        assert marks.interval_birth_to_top_pct == 1.0


class TestVault:
    def test_vault_when_interval_small(self):
        monthly = [5, 5] + [0] * 40
        marks = landmarks(monthly)
        assert marks.has_vault

    def test_no_vault_when_interval_long(self):
        monthly = [5] + [0] * 20 + [5]
        marks = landmarks(monthly)
        assert not marks.has_vault


class TestActiveGrowthMonths:
    def test_counts_strict_interior(self):
        # birth=0, top=4; interior months 1..3, two of them active.
        marks = landmarks([1, 2, 0, 2, 10])
        assert marks.active_growth_months == 2

    def test_zero_when_interval_zero(self):
        marks = landmarks([10, 1])
        assert marks.active_growth_months == 0

    def test_birth_and_top_not_counted(self):
        marks = landmarks([5, 0, 0, 10])
        assert marks.active_growth_months == 0

    def test_pct_growth_normalization(self):
        marks = landmarks([1, 2, 0, 2, 10])
        assert marks.active_pct_growth == pytest.approx(2 / 3)

    def test_pct_pup_normalization(self):
        marks = landmarks([1, 2, 0, 2, 10])
        assert marks.active_pct_pup == pytest.approx(2 / 5)

    def test_pct_growth_zero_interior(self):
        marks = landmarks([5, 10])
        assert marks.active_pct_growth == 0.0
