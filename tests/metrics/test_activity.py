"""Unit tests for activity-volume aggregates."""

from repro.diff.changes import ChangeKind
from repro.diff.stats import ChangeBreakdown
from repro.history.heartbeat import ActivitySeries, schema_heartbeat
from repro.metrics.activity import compute_activity_totals
from tests.conftest import make_history


def breakdown(**kinds):
    return ChangeBreakdown.from_counts(
        {ChangeKind[k.upper()]: v for k, v in kinds.items()})


class TestActivityTotals:
    def test_from_history(self, simple_history):
        series = schema_heartbeat(simple_history)
        totals = compute_activity_totals(series, birth_month=0)
        assert totals.total_activity == 6
        assert totals.birth_activity == 2
        assert totals.post_birth_activity == 4
        assert totals.schema_size_at_birth == 2

    def test_expansion_maintenance_split(self, simple_history):
        series = schema_heartbeat(simple_history)
        totals = compute_activity_totals(series, birth_month=0)
        assert totals.expansion == 5   # 2 + 3 born
        assert totals.maintenance == 1  # the type change
        assert totals.expansion_fraction == 5 / 6

    def test_without_breakdowns(self):
        series = ActivitySeries((4, 2))
        totals = compute_activity_totals(series, birth_month=0)
        assert totals.total_activity == 6
        assert totals.expansion == 0
        assert totals.schema_size_at_birth == 0

    def test_zero_activity(self):
        series = ActivitySeries((0, 0),
                                breakdowns=(breakdown(), breakdown()))
        totals = compute_activity_totals(series, birth_month=0)
        assert totals.total_activity == 0
        assert totals.expansion_fraction == 0.0

    def test_late_birth(self):
        series = ActivitySeries((0, 0, 5, 3))
        totals = compute_activity_totals(series, birth_month=2)
        assert totals.birth_activity == 5
        assert totals.post_birth_activity == 3
