"""CLI coverage of ``repro-schema refresh`` and the delta surfaces.

Pins the incremental re-study contract at the outermost layer: refresh
stdout after an append is byte-identical to a cold ``study`` of the
grown source, the delta summary and ``--timings`` delta column land on
stderr, ``--watch`` skips unchanged polls, and the ledger table shows
the hot/delta columns.
"""

import dataclasses
import shutil
from datetime import timedelta

import pytest

from repro.cli import main
from repro.corpus.generator import generate_corpus
from repro.history.commit import Commit
from repro.history.repository import SchemaHistory
from repro.patterns.taxonomy import Pattern
from repro.sources import export_corpus_dir, import_corpus_dir

POPULATION = {
    Pattern.FLATLINER: 2,
    Pattern.SIGMOID: 2,
    Pattern.QUANTUM_STEPS: 2,
    Pattern.SIESTA: 2,
}


@pytest.fixture
def corpus_root(tmp_path):
    corpus = generate_corpus(seed=99, population=POPULATION,
                             with_exceptions=False)
    root = tmp_path / "corpus"
    export_corpus_dir(corpus, root)
    return root


def grow(root, indexes, k):
    corpus = import_corpus_dir(root)
    projects = list(corpus.projects)
    for idx in indexes:
        history = projects[idx].history
        commits = list(history.commits)
        for i in range(k):
            ts = commits[-1].timestamp + timedelta(days=30)
            commits.append(Commit(
                sha=f"grow-{i}", timestamp=ts,
                ddl_text=commits[-1].ddl_text
                + f"\nCREATE TABLE delta_extra_{i} (id INT);\n"))
        projects[idx] = dataclasses.replace(
            projects[idx],
            history=SchemaHistory(
                history.project_name, commits,
                project_start=history.project_start,
                project_end=max(history.project_end,
                                commits[-1].timestamp),
                dialect=history.dialect,
                incremental=history.incremental))
    shutil.rmtree(root)
    export_corpus_dir(dataclasses.replace(corpus, projects=projects),
                      root)


class TestRefresh:
    def test_refresh_matches_cold_study_after_append(self, tmp_path,
                                                     corpus_root,
                                                     capsys):
        cache = tmp_path / "cache"
        assert main(["study", "--source", f"dir:{corpus_root}",
                     "--cache-dir", str(cache)]) == 0
        capsys.readouterr()

        grow(corpus_root, [0, 1], 2)
        assert main(["refresh", "--source", f"dir:{corpus_root}",
                     "--cache-dir", str(cache)]) == 0
        refreshed = capsys.readouterr()
        assert "2 appended" in refreshed.err
        assert "4 parsed" in refreshed.err

        assert main(["study", "--source", f"dir:{corpus_root}",
                     "--cache-dir", str(tmp_path / "cold")]) == 0
        cold = capsys.readouterr()
        assert refreshed.out == cold.out

    def test_refresh_without_growth_reports_unchanged(self, tmp_path,
                                                      corpus_root,
                                                      capsys):
        cache = tmp_path / "cache"
        main(["study", "--source", f"dir:{corpus_root}",
              "--cache-dir", str(cache)])
        capsys.readouterr()
        assert main(["refresh", "--source", f"dir:{corpus_root}",
                     "--cache-dir", str(cache)]) == 0
        err = capsys.readouterr().err
        assert "8 unchanged / 0 appended" in err

    def test_timings_show_delta_column(self, tmp_path, corpus_root,
                                       capsys):
        cache = tmp_path / "cache"
        main(["study", "--source", f"dir:{corpus_root}",
              "--cache-dir", str(cache)])
        grow(corpus_root, [0], 1)
        capsys.readouterr()
        assert main(["refresh", "--source", f"dir:{corpus_root}",
                     "--cache-dir", str(cache), "--timings"]) == 0
        err = capsys.readouterr().err
        assert "delta" in err
        assert "1 app / 0 rew / " in err
        assert "[hot " in err

    def test_watch_skips_unchanged_polls(self, tmp_path, corpus_root,
                                         capsys):
        cache = tmp_path / "cache"
        main(["study", "--source", f"dir:{corpus_root}",
              "--cache-dir", str(cache)])
        capsys.readouterr()
        assert main(["refresh", "--source", f"dir:{corpus_root}",
                     "--cache-dir", str(cache),
                     "--watch", "0.01", "--max-polls", "3"]) == 0
        err = capsys.readouterr().err
        assert err.count("source unchanged, skipping") == 2

    def test_no_delta_still_correct(self, tmp_path, corpus_root,
                                    capsys):
        cache = tmp_path / "cache"
        main(["study", "--source", f"dir:{corpus_root}",
              "--cache-dir", str(cache), "--no-delta"])
        capsys.readouterr()
        grow(corpus_root, [0], 1)
        assert main(["refresh", "--source", f"dir:{corpus_root}",
                     "--cache-dir", str(cache), "--no-delta"]) == 0
        refreshed = capsys.readouterr()
        assert "0 appended" in refreshed.err
        main(["study", "--source", f"dir:{corpus_root}",
              "--cache-dir", str(tmp_path / "cold")])
        assert refreshed.out == capsys.readouterr().out


class TestLedgerColumns:
    def test_hot_and_delta_columns(self, tmp_path, corpus_root,
                                   capsys):
        cache = tmp_path / "cache"
        main(["study", "--source", f"dir:{corpus_root}",
              "--cache-dir", str(cache)])
        grow(corpus_root, [0], 2)
        main(["refresh", "--source", f"dir:{corpus_root}",
              "--cache-dir", str(cache)])
        capsys.readouterr()
        assert main(["ledger", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "hot" in out and "delta" in out
        assert "1a/0r/2p" in out

    def test_json_ledger_carries_delta_fields(self, tmp_path,
                                              corpus_root, capsys):
        import json
        cache = tmp_path / "cache"
        main(["study", "--source", f"dir:{corpus_root}",
              "--cache-dir", str(cache)])
        capsys.readouterr()
        assert main(["ledger", str(cache), "--json"]) == 0
        run = json.loads(capsys.readouterr().out.splitlines()[0])
        for key in ("delta_appended", "delta_rewritten",
                    "delta_reused", "delta_parsed", "hot_hits",
                    "hot_misses", "evictions"):
            assert key in run
