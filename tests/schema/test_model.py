"""Unit tests for the logical schema model."""

from repro.schema.model import (
    Attribute,
    EMPTY_SCHEMA,
    ForeignKey,
    Schema,
    Table,
)
from repro.sqlddl.ast_nodes import DataType


def make_table(name="users", cols=("id", "email")):
    return Table(name=name,
                 attributes=tuple(Attribute(name=c,
                                            data_type=DataType("INTEGER"))
                                  for c in cols),
                 primary_key=(cols[0],))


class TestAttribute:
    def test_with_keys(self):
        attr = Attribute("a", DataType("INTEGER"))
        updated = attr.with_keys(in_pk=True, in_fk=True)
        assert updated.in_primary_key and updated.in_foreign_key
        assert updated.name == "a"
        assert not attr.in_primary_key  # original unchanged

    def test_hashable(self):
        assert len({Attribute("a"), Attribute("a")}) == 1


class TestTable:
    def test_attribute_lookup(self):
        table = make_table()
        assert table.attribute("email").name == "email"
        assert table.attribute("missing") is None

    def test_contains(self):
        table = make_table()
        assert "id" in table
        assert "nope" not in table

    def test_len_counts_attributes(self):
        assert len(make_table(cols=("a", "b", "c"))) == 3

    def test_attribute_names_order(self):
        assert make_table().attribute_names == ("id", "email")


class TestSchema:
    def test_empty(self):
        assert EMPTY_SCHEMA.table_count == 0
        assert EMPTY_SCHEMA.attribute_count == 0
        assert len(EMPTY_SCHEMA) == 0

    def test_lookup(self):
        schema = Schema(tables=(make_table(), make_table("orders")))
        assert schema.table("orders").name == "orders"
        assert schema.table("missing") is None
        assert "users" in schema

    def test_attribute_count(self):
        schema = Schema(tables=(make_table(cols=("a",)),
                                make_table("t2", cols=("a", "b", "c"))))
        assert schema.attribute_count == 4

    def test_as_dict_is_fresh(self):
        schema = Schema(tables=(make_table(),))
        mapping = schema.as_dict()
        mapping["hacked"] = None
        assert "hacked" not in schema

    def test_iteration(self):
        schema = Schema(tables=(make_table("a"), make_table("b")))
        assert [t.name for t in schema] == ["a", "b"]

    def test_foreign_key_record(self):
        fk = ForeignKey(columns=("u",), ref_table="users",
                        ref_columns=("id",))
        table = Table(name="orders",
                      attributes=(Attribute("u", in_foreign_key=True),),
                      foreign_keys=(fk,))
        assert table.foreign_keys[0].ref_table == "users"
