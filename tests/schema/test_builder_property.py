"""Property test: the schema builder agrees with a reference model.

A random sequence of DDL operations is applied twice — once through the
real parser+builder (as SQL text), once to a trivially simple reference
model (dicts of name -> type string). The resulting schemas must agree
on table names, column names and canonical types.
"""

from hypothesis import given, settings, strategies as st

from repro.schema.builder import build_schema
from repro.sqlddl.normalize import canonical_type_name
from repro.sqlddl.parser import parse_script

_TABLES = ("alpha", "beta", "gamma")
_COLUMNS = ("c1", "c2", "c3", "c4")
_TYPES = ("INT", "TEXT", "BOOLEAN", "DATE")

operations = st.one_of(
    st.tuples(st.just("create"), st.sampled_from(_TABLES),
              st.sampled_from(_COLUMNS), st.sampled_from(_TYPES)),
    st.tuples(st.just("drop"), st.sampled_from(_TABLES)),
    st.tuples(st.just("add_col"), st.sampled_from(_TABLES),
              st.sampled_from(_COLUMNS), st.sampled_from(_TYPES)),
    st.tuples(st.just("drop_col"), st.sampled_from(_TABLES),
              st.sampled_from(_COLUMNS)),
    st.tuples(st.just("retype"), st.sampled_from(_TABLES),
              st.sampled_from(_COLUMNS), st.sampled_from(_TYPES)),
    st.tuples(st.just("rename_col"), st.sampled_from(_TABLES),
              st.sampled_from(_COLUMNS), st.sampled_from(_COLUMNS)),
)


def apply_reference(model: dict, op: tuple) -> str | None:
    """Apply one op to the reference model; returns the SQL equivalent
    (None when the op is a no-op for the reference and must be skipped
    in the SQL stream too)."""
    kind = op[0]
    if kind == "create":
        _, table, column, type_name = op
        if table in model:
            return None
        model[table] = {column: canonical_type_name(type_name)}
        return f"CREATE TABLE {table} ({column} {type_name});"
    if kind == "drop":
        _, table = op
        if table not in model:
            return None
        del model[table]
        return f"DROP TABLE {table};"
    if kind == "add_col":
        _, table, column, type_name = op
        if table not in model or column in model[table]:
            return None
        model[table][column] = canonical_type_name(type_name)
        return f"ALTER TABLE {table} ADD COLUMN {column} {type_name};"
    if kind == "drop_col":
        _, table, column = op
        if table not in model or column not in model[table] \
                or len(model[table]) == 1:
            return None
        del model[table][column]
        return f"ALTER TABLE {table} DROP COLUMN {column};"
    if kind == "retype":
        _, table, column, type_name = op
        if table not in model or column not in model[table]:
            return None
        model[table][column] = canonical_type_name(type_name)
        return (f"ALTER TABLE {table} ALTER COLUMN {column} "
                f"TYPE {type_name};")
    if kind == "rename_col":
        _, table, old, new = op
        if table not in model or old not in model[table] \
                or new in model[table]:
            return None
        model[table][new] = model[table].pop(old)
        return f"ALTER TABLE {table} RENAME COLUMN {old} TO {new};"
    raise AssertionError(f"unknown op {kind}")


@settings(max_examples=150, deadline=None)
@given(ops=st.lists(operations, min_size=0, max_size=25))
def test_builder_agrees_with_reference_model(ops):
    reference: dict[str, dict[str, str]] = {}
    statements: list[str] = []
    for op in ops:
        sql = apply_reference(reference, op)
        if sql is not None:
            statements.append(sql)

    schema = build_schema(parse_script("\n".join(statements)))

    assert set(schema.table_names) == set(reference)
    for table_name, columns in reference.items():
        table = schema.table(table_name)
        assert set(table.attribute_names) == set(columns)
        for column_name, type_name in columns.items():
            actual = table.attribute(column_name).data_type
            assert actual is not None
            assert actual.name == type_name
