"""Unit tests for schema validation."""

from repro.schema.builder import build_schema
from repro.schema.validate import validate_schema
from repro.sqlddl.parser import parse_script


def validate(sql):
    return validate_schema(build_schema(parse_script(sql)))


class TestValidation:
    def test_clean_schema(self):
        issues = validate(
            "CREATE TABLE users (id INT PRIMARY KEY);"
            "CREATE TABLE orders (id INT PRIMARY KEY, "
            "u INT REFERENCES users (id));")
        assert issues == []

    def test_dangling_fk_table(self):
        issues = validate("CREATE TABLE t (u INT REFERENCES ghost (id));")
        assert any(i.kind == "dangling-fk-table" for i in issues)

    def test_dangling_fk_column(self):
        issues = validate(
            "CREATE TABLE users (id INT);"
            "CREATE TABLE t (u INT REFERENCES users (ghost));")
        assert any(i.kind == "dangling-fk-column" for i in issues)

    def test_fk_without_ref_columns_ok(self):
        issues = validate(
            "CREATE TABLE users (id INT);"
            "CREATE TABLE t (u INT REFERENCES users);")
        assert issues == []

    def test_empty_table_flagged(self):
        # A table whose only column was dropped.
        issues = validate("CREATE TABLE t (a INT);"
                          "ALTER TABLE t DROP COLUMN a;")
        assert any(i.kind == "empty-table" for i in issues)

    def test_issue_carries_table_and_detail(self):
        issues = validate("CREATE TABLE t (u INT REFERENCES ghost (id));")
        assert issues[0].table == "t"
        assert "ghost" in issues[0].detail
