"""Unit tests for the DDL-to-schema builder."""

import pytest

from repro.errors import SchemaError
from repro.schema.builder import SchemaBuilder, build_schema
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.parser import parse_script
from repro.sqlddl.ast_nodes import DataType


def build(sql, strict=False, dialect=Dialect.GENERIC):
    return build_schema(parse_script(sql, dialect), strict=strict)


class TestCreate:
    def test_simple_table(self):
        schema = build("CREATE TABLE Users (Id INT, Email VARCHAR(50));")
        table = schema.table("users")
        assert table is not None  # names normalized to lower case
        assert table.attribute_names == ("id", "email")

    def test_types_canonicalized(self):
        schema = build("CREATE TABLE t (a INT(11), b TINYINT(1));")
        table = schema.table("t")
        assert table.attribute("a").data_type == DataType("INTEGER")
        assert table.attribute("b").data_type == DataType("BOOLEAN")

    def test_inline_pk_flags(self):
        schema = build("CREATE TABLE t (id INT PRIMARY KEY, x INT);")
        table = schema.table("t")
        assert table.attribute("id").in_primary_key
        assert not table.attribute("x").in_primary_key
        assert table.primary_key == ("id",)

    def test_table_level_pk(self):
        schema = build("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b));")
        assert build("CREATE TABLE t (a INT, b INT, "
                     "PRIMARY KEY (a, b));").table("t").primary_key \
            == ("a", "b")
        assert schema.table("t").attribute("b").in_primary_key

    def test_pk_implies_not_null(self):
        schema = build("CREATE TABLE t (id INT PRIMARY KEY);")
        assert schema.table("t").attribute("id").not_null

    def test_inline_fk_flags(self):
        schema = build("CREATE TABLE t (u INT REFERENCES users (id));")
        table = schema.table("t")
        assert table.attribute("u").in_foreign_key
        assert table.foreign_keys[0].ref_table == "users"

    def test_table_level_fk(self):
        schema = build(
            "CREATE TABLE t (u INT, FOREIGN KEY (u) REFERENCES users (id));")
        assert schema.table("t").attribute("u").in_foreign_key

    def test_unique_constraint_recorded(self):
        schema = build("CREATE TABLE t (a INT, UNIQUE (a));")
        assert schema.table("t").unique_keys == (("a",),)

    def test_temporary_ignored(self):
        schema = build("CREATE TEMPORARY TABLE tmp (a INT);")
        assert schema.table_count == 0

    def test_if_not_exists_skips_duplicate(self):
        schema = build("CREATE TABLE t (a INT);"
                       "CREATE TABLE IF NOT EXISTS t (b INT);")
        assert schema.table("t").attribute_names == ("a",)

    def test_duplicate_create_lenient_replaces(self):
        builder = SchemaBuilder()
        builder.apply_script(parse_script(
            "CREATE TABLE t (a INT); CREATE TABLE t (b INT);"))
        assert builder.snapshot().table("t").attribute_names == ("b",)
        assert builder.issues

    def test_duplicate_create_strict_raises(self):
        with pytest.raises(SchemaError):
            build("CREATE TABLE t (a INT); CREATE TABLE t (b INT);",
                  strict=True)


class TestDrop:
    def test_drop_table(self):
        schema = build("CREATE TABLE t (a INT); DROP TABLE t;")
        assert schema.table_count == 0

    def test_drop_missing_lenient(self):
        builder = SchemaBuilder()
        builder.apply_script(parse_script("DROP TABLE ghost;"))
        assert builder.issues

    def test_drop_missing_if_exists_silent(self):
        builder = SchemaBuilder()
        builder.apply_script(parse_script("DROP TABLE IF EXISTS ghost;"))
        assert not builder.issues

    def test_drop_missing_strict_raises(self):
        with pytest.raises(SchemaError):
            build("DROP TABLE ghost;", strict=True)


class TestAlter:
    def test_add_column(self):
        schema = build("CREATE TABLE t (a INT);"
                       "ALTER TABLE t ADD COLUMN b TEXT;")
        assert schema.table("t").attribute_names == ("a", "b")

    def test_add_column_first(self):
        schema = build("CREATE TABLE t (a INT);"
                       "ALTER TABLE t ADD COLUMN b INT FIRST;",
                       dialect=Dialect.MYSQL)
        assert schema.table("t").attribute_names == ("b", "a")

    def test_add_column_after(self):
        schema = build("CREATE TABLE t (a INT, c INT);"
                       "ALTER TABLE t ADD COLUMN b INT AFTER a;",
                       dialect=Dialect.MYSQL)
        assert schema.table("t").attribute_names == ("a", "b", "c")

    def test_drop_column(self):
        schema = build("CREATE TABLE t (a INT, b INT);"
                       "ALTER TABLE t DROP COLUMN a;")
        assert schema.table("t").attribute_names == ("b",)

    def test_drop_column_cleans_keys(self):
        schema = build(
            "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b), "
            "UNIQUE (a));"
            "ALTER TABLE t DROP COLUMN a;")
        table = schema.table("t")
        assert table.primary_key == ("b",)
        assert table.unique_keys == ()

    def test_modify_column_type(self):
        schema = build("CREATE TABLE t (a INT);"
                       "ALTER TABLE t MODIFY COLUMN a BIGINT;",
                       dialect=Dialect.MYSQL)
        assert schema.table("t").attribute("a").data_type \
            == DataType("BIGINT")

    def test_change_column_renames(self):
        schema = build("CREATE TABLE t (a INT);"
                       "ALTER TABLE t CHANGE COLUMN a b TEXT;",
                       dialect=Dialect.MYSQL)
        table = schema.table("t")
        assert table.attribute("b").data_type == DataType("TEXT")
        assert table.attribute("a") is None

    def test_alter_column_type_postgres(self):
        schema = build("CREATE TABLE t (a INT);"
                       "ALTER TABLE t ALTER COLUMN a TYPE TEXT;",
                       dialect=Dialect.POSTGRES)
        assert schema.table("t").attribute("a").data_type \
            == DataType("TEXT")

    def test_set_not_null(self):
        schema = build("CREATE TABLE t (a INT);"
                       "ALTER TABLE t ALTER COLUMN a SET NOT NULL;")
        assert schema.table("t").attribute("a").not_null

    def test_add_fk_constraint(self):
        schema = build("CREATE TABLE users (id INT PRIMARY KEY);"
                       "CREATE TABLE t (u INT);"
                       "ALTER TABLE t ADD CONSTRAINT fk FOREIGN KEY (u) "
                       "REFERENCES users (id);")
        assert schema.table("t").attribute("u").in_foreign_key

    def test_drop_named_fk(self):
        schema = build("CREATE TABLE t (u INT, CONSTRAINT fk FOREIGN KEY "
                       "(u) REFERENCES users (id));"
                       "ALTER TABLE t DROP CONSTRAINT fk;")
        table = schema.table("t")
        assert table.foreign_keys == ()
        assert not table.attribute("u").in_foreign_key

    def test_drop_primary_key(self):
        schema = build("CREATE TABLE t (id INT PRIMARY KEY);"
                       "ALTER TABLE t DROP PRIMARY KEY;",
                       dialect=Dialect.MYSQL)
        assert schema.table("t").primary_key == ()

    def test_rename_table(self):
        schema = build("CREATE TABLE t (a INT);"
                       "ALTER TABLE t RENAME TO t2;")
        assert schema.table("t2") is not None
        assert schema.table("t") is None

    def test_rename_column_updates_keys(self):
        schema = build("CREATE TABLE t (a INT PRIMARY KEY);"
                       "ALTER TABLE t RENAME COLUMN a TO b;")
        table = schema.table("t")
        assert table.primary_key == ("b",)
        assert table.attribute("b").in_primary_key

    def test_alter_missing_table_lenient(self):
        builder = SchemaBuilder()
        builder.apply_script(parse_script(
            "ALTER TABLE ghost ADD COLUMN a INT;"))
        assert builder.issues

    def test_alter_missing_column_lenient(self):
        builder = SchemaBuilder()
        builder.apply_script(parse_script(
            "CREATE TABLE t (a INT);"
            "ALTER TABLE t DROP COLUMN ghost;"))
        assert builder.issues

    def test_duplicate_column_add_lenient(self):
        builder = SchemaBuilder()
        builder.apply_script(parse_script(
            "CREATE TABLE t (a INT);"
            "ALTER TABLE t ADD COLUMN a TEXT;"))
        assert builder.issues
        assert builder.snapshot().table("t").attribute("a").data_type \
            == DataType("INTEGER")

    def test_rename_to_existing_table_refused(self):
        builder = SchemaBuilder()
        builder.apply_script(parse_script(
            "CREATE TABLE a (x INT); CREATE TABLE b (y INT);"
            "ALTER TABLE a RENAME TO b;"))
        assert builder.issues
        snapshot = builder.snapshot()
        assert snapshot.table("a") and snapshot.table("b")


class TestIndexes:
    def test_create_index_no_logical_effect(self):
        schema = build("CREATE TABLE t (a INT);"
                       "CREATE INDEX idx ON t (a);"
                       "DROP INDEX idx;")
        assert schema.table("t").attribute_names == ("a",)
