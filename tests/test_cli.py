"""Integration tests for the command-line interface."""

import json
from datetime import datetime

import pytest

from repro.cli import main
from repro.corpus.dataset import save_corpus
from repro.history.repository import save_history_to_jsonl
from tests.conftest import make_history


@pytest.fixture
def history_jsonl(tmp_path):
    history = make_history(
        ["CREATE TABLE t (a INT);",
         "CREATE TABLE t (a INT); CREATE TABLE u (b INT, c INT);"],
        project_start=datetime(2020, 1, 1),
        project_end=datetime(2022, 1, 1),
        name="cli-proj")
    path = tmp_path / "proj.jsonl"
    save_history_to_jsonl(history, path)
    return path


class TestGenerate:
    def test_generate_writes_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus.json"
        # A tiny corpus via the default population takes ~seconds; use
        # the real command but a fixed seed.
        code = main(["generate", str(out), "--seed", "3"])
        assert code == 0
        document = json.loads(out.read_text())
        assert len(document["projects"]) == 151
        assert "wrote 151 projects" in capsys.readouterr().out


class TestStudy:
    def test_study_on_saved_corpus(self, tmp_path, capsys, small_corpus):
        path = tmp_path / "c.json"
        save_corpus(small_corpus, path)
        code = main(["study", "--corpus", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "Fig. 7" in out
        assert "Sec. 6.1" in out


class TestProfile:
    def test_profile_output(self, history_jsonl, capsys):
        code = main(["profile", str(history_jsonl)])
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-proj" in out
        assert "pattern:" in out
        assert "schema birth:" in out

    def test_directory_input(self, tmp_path, capsys):
        (tmp_path / "2020-01-01.sql").write_text(
            "CREATE TABLE t (a INT);")
        (tmp_path / "2021-06-01.sql").write_text(
            "CREATE TABLE t (a INT, b INT);")
        code = main(["profile", str(tmp_path)])
        assert code == 0
        assert "pattern:" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["profile", str(tmp_path / "nope")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestChart:
    def test_ascii_chart(self, history_jsonl, capsys):
        code = main(["chart", str(history_jsonl)])
        assert code == 0
        assert "* schema" in capsys.readouterr().out

    def test_svg_chart(self, history_jsonl, tmp_path, capsys):
        svg = tmp_path / "out.svg"
        code = main(["chart", str(history_jsonl), "--svg", str(svg)])
        assert code == 0
        assert svg.read_text().startswith("<svg")
