"""CLI crash-recovery surface: exit 130, --resume, the resume listing."""

import re

import pytest

from repro.cli import EXIT_INTERRUPTED, main
from repro.corpus.dataset import save_corpus
from repro.engine import read_journal

#: Mid-corpus project (10th of 16 in the small corpus): interrupting at
#: its dispatch point leaves earlier work journaled, later work undone.
MID_PROJECT = "quantum-steps-01"

RESUME_HINT = re.compile(
    r"interrupted — resume with: repro-schema study --resume "
    r"(r[0-9a-f]{12})")


@pytest.fixture
def corpus_path(tmp_path, small_corpus):
    path = tmp_path / "corpus.json"
    save_corpus(small_corpus, path)
    return path


def run_study(corpus_path, *extra):
    return main(["study", "--corpus", str(corpus_path), *extra])


def interrupt_run(corpus_path, cache_dir, capsys):
    """Run a study that gets interrupted; return the hinted run id."""
    code = run_study(corpus_path, "--cache-dir", str(cache_dir),
                     "--fault-plan", f"interrupt@{MID_PROJECT}")
    assert code == EXIT_INTERRUPTED
    match = RESUME_HINT.search(capsys.readouterr().err)
    assert match is not None
    return match.group(1)


class TestInterruptedExit:
    def test_exit_130_with_resume_hint(self, corpus_path, tmp_path,
                                       capsys):
        run_id = interrupt_run(corpus_path, tmp_path / "cache", capsys)
        assert read_journal(tmp_path / "cache", run_id).status \
            == "interrupted"

    def test_keyboard_interrupt_is_130(self, corpus_path, capsys,
                                       monkeypatch):
        def boom(args):
            raise KeyboardInterrupt
        monkeypatch.setattr("repro.cli._run_study_like", boom)
        assert run_study(corpus_path) == EXIT_INTERRUPTED
        assert "interrupted" in capsys.readouterr().err

    def test_refresh_interrupts_too(self, corpus_path, tmp_path,
                                    capsys):
        code = main(["refresh", "--corpus", str(corpus_path),
                     "--cache-dir", str(tmp_path / "cache"),
                     "--fault-plan", f"interrupt@{MID_PROJECT}"])
        assert code == EXIT_INTERRUPTED
        assert RESUME_HINT.search(capsys.readouterr().err)


class TestResumeFlow:
    def test_resume_completes_byte_identically(self, corpus_path,
                                               tmp_path, capsys):
        cold = run_study(corpus_path)
        cold_out = capsys.readouterr().out
        assert cold == 0

        cache = tmp_path / "cache"
        run_id = interrupt_run(corpus_path, cache, capsys)
        code = run_study(corpus_path, "--cache-dir", str(cache),
                         "--resume", run_id)
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == cold_out
        assert read_journal(cache, run_id).status == "interrupted"

    def test_resume_without_cache_dir_is_an_error(self, corpus_path,
                                                  capsys):
        code = run_study(corpus_path, "--resume", "rdeadbeef0000")
        assert code == 1
        assert "resume needs a cache dir" in capsys.readouterr().err

    def test_resume_unknown_run_is_an_error(self, corpus_path,
                                            tmp_path, capsys):
        code = run_study(corpus_path,
                         "--cache-dir", str(tmp_path / "cache"),
                         "--resume", "rdeadbeef0000")
        assert code == 1
        assert "no journal for run" in capsys.readouterr().err


class TestResumeListing:
    def test_lists_interrupted_runs(self, corpus_path, tmp_path,
                                    capsys):
        cache = tmp_path / "cache"
        run_id = interrupt_run(corpus_path, cache, capsys)
        assert main(["resume", str(cache)]) == 0
        captured = capsys.readouterr()
        assert run_id in captured.out
        assert "interrupted" in captured.out
        assert "--resume RUN_ID" in captured.err

    def test_json_listing(self, corpus_path, tmp_path, capsys):
        import json
        cache = tmp_path / "cache"
        run_id = interrupt_run(corpus_path, cache, capsys)
        assert main(["resume", str(cache), "--json"]) == 0
        rows = [json.loads(line) for line in
                capsys.readouterr().out.splitlines()]
        assert rows[0]["run_id"] == run_id
        assert rows[0]["status"] == "interrupted"
        assert rows[0]["items"] > 0

    def test_empty_cache_dir(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path)]) == 0
        assert "no resumable runs" in capsys.readouterr().out

    def test_completed_runs_not_listed(self, corpus_path, tmp_path,
                                       capsys):
        cache = tmp_path / "cache"
        assert run_study(corpus_path, "--cache-dir", str(cache)) == 0
        assert main(["resume", str(cache)]) == 0
        assert "no resumable runs" in capsys.readouterr().out


class TestDegradationWarnings:
    def test_enospc_warns_and_still_succeeds(self, corpus_path,
                                             tmp_path, capsys):
        code = run_study(corpus_path,
                         "--cache-dir", str(tmp_path / "cache"),
                         "--fault-plan", "enospc@flatliner-01")
        captured = capsys.readouterr()
        assert code == 0
        assert "continuing memory-only" in captured.err
