"""Unit tests for label-scheme serialization."""

import json

import pytest

from repro.errors import LabelError
from repro.labels.quantization import DEFAULT_SCHEME, LabelScheme


class TestSchemeSerialization:
    def test_roundtrip(self):
        restored = LabelScheme.from_dict(DEFAULT_SCHEME.to_dict())
        assert restored == DEFAULT_SCHEME

    def test_json_compatible(self):
        text = json.dumps(DEFAULT_SCHEME.to_dict())
        restored = LabelScheme.from_dict(json.loads(text))
        assert restored == DEFAULT_SCHEME

    def test_custom_scheme_roundtrip(self):
        scheme = LabelScheme(birth_volume_bounds=(0.1, 0.6),
                             timing_bounds=(0.3, 0.8))
        assert LabelScheme.from_dict(scheme.to_dict()) == scheme

    def test_missing_key_raises(self):
        data = DEFAULT_SCHEME.to_dict()
        del data["timing_bounds"]
        with pytest.raises(LabelError):
            LabelScheme.from_dict(data)

    def test_wrong_arity_raises(self):
        data = DEFAULT_SCHEME.to_dict()
        data["interval_birth_top_bounds"] = [0.1, 0.2]
        with pytest.raises(LabelError):
            LabelScheme.from_dict(data)

    def test_restored_scheme_labels_identically(self):
        restored = LabelScheme.from_dict(DEFAULT_SCHEME.to_dict())
        for value in (0.0, 0.2, 0.25, 0.5, 0.75, 0.9, 1.0):
            assert restored.birth_volume(value) \
                is DEFAULT_SCHEME.birth_volume(value)
