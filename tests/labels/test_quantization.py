"""Unit tests for the Table-1 quantization."""

import pytest

from repro.errors import LabelError
from repro.labels.classes import (
    ActiveGrowthClass,
    ActivePupClass,
    BirthTimingClass,
    BirthVolumeClass,
    IntervalBirthToTopClass,
    IntervalTopToEndClass,
    TopBandTimingClass,
)
from repro.labels.quantization import DEFAULT_SCHEME, LabelScheme, label_profile
from repro.metrics.profile import ProjectProfile
from tests.conftest import make_history

S = DEFAULT_SCHEME


class TestBirthVolume:
    @pytest.mark.parametrize("value,expected", [
        (0.0, BirthVolumeClass.LOW),
        (0.25, BirthVolumeClass.LOW),
        (0.2500001, BirthVolumeClass.FAIR),
        (0.75, BirthVolumeClass.FAIR),
        (0.76, BirthVolumeClass.HIGH),
        (0.999, BirthVolumeClass.HIGH),
        (1.0, BirthVolumeClass.FULL),
    ])
    def test_boundaries(self, value, expected):
        assert S.birth_volume(value) is expected

    def test_out_of_range_raises(self):
        with pytest.raises(LabelError):
            S.birth_volume(1.5)
        with pytest.raises(LabelError):
            S.birth_volume(-0.2)


class TestTimings:
    def test_v0_is_month_zero_not_pct_zero(self):
        assert S.birth_timing(0, 0.0) is BirthTimingClass.V0
        # month 1 of a very long project: pct ~0 but not V0
        assert S.birth_timing(1, 0.001) is BirthTimingClass.EARLY

    @pytest.mark.parametrize("pct,expected", [
        (0.1, BirthTimingClass.EARLY),
        (0.25, BirthTimingClass.EARLY),
        (0.26, BirthTimingClass.MIDDLE),
        (0.75, BirthTimingClass.MIDDLE),
        (0.76, BirthTimingClass.LATE),
        (1.0, BirthTimingClass.LATE),
    ])
    def test_birth_boundaries(self, pct, expected):
        assert S.birth_timing(3, pct) is expected

    def test_top_band_same_scheme(self):
        assert S.top_band_timing(0, 0.0) is TopBandTimingClass.V0
        assert S.top_band_timing(9, 0.5) is TopBandTimingClass.MIDDLE


class TestIntervals:
    def test_zero_is_months_not_pct(self):
        assert S.interval_birth_to_top(0, 0.0) \
            is IntervalBirthToTopClass.ZERO
        assert S.interval_birth_to_top(1, 0.004) \
            is IntervalBirthToTopClass.SOON

    @pytest.mark.parametrize("pct,expected", [
        (0.05, IntervalBirthToTopClass.SOON),
        (0.1, IntervalBirthToTopClass.SOON),
        (0.2, IntervalBirthToTopClass.FAIR),
        (0.35, IntervalBirthToTopClass.FAIR),
        (0.5, IntervalBirthToTopClass.LONG),
        (0.75, IntervalBirthToTopClass.LONG),
        (0.76, IntervalBirthToTopClass.VERY_LONG),
    ])
    def test_birth_to_top_boundaries(self, pct, expected):
        assert S.interval_birth_to_top(2, pct) is expected

    @pytest.mark.parametrize("pct,expected", [
        (0.0, IntervalTopToEndClass.SOON),
        (0.25, IntervalTopToEndClass.SOON),
        (0.5, IntervalTopToEndClass.FAIR),
        (0.75, IntervalTopToEndClass.FAIR),
        (0.9, IntervalTopToEndClass.LONG),
        (1.0, IntervalTopToEndClass.FULL),
    ])
    def test_top_to_end_boundaries(self, pct, expected):
        assert S.interval_top_to_end(pct) is expected


class TestActivity:
    def test_zero_months(self):
        assert S.active_growth(0, 0.0) is ActiveGrowthClass.ZERO
        assert S.active_pup(0, 0.0) is ActivePupClass.ZERO

    @pytest.mark.parametrize("share,expected", [
        (0.1, ActiveGrowthClass.FEW),
        (0.2, ActiveGrowthClass.FEW),
        (0.5, ActiveGrowthClass.FAIR),
        (0.75, ActiveGrowthClass.FAIR),
        (0.9, ActiveGrowthClass.HIGH),
    ])
    def test_growth_boundaries(self, share, expected):
        assert S.active_growth(2, share) is expected

    @pytest.mark.parametrize("share,expected", [
        (0.05, ActivePupClass.FAIR),
        (0.08, ActivePupClass.FAIR),
        (0.3, ActivePupClass.HIGH),
        (0.5, ActivePupClass.HIGH),
        (0.6, ActivePupClass.ULTRA),
    ])
    def test_pup_boundaries(self, share, expected):
        assert S.active_pup(2, share) is expected


class TestCustomScheme:
    def test_boundaries_configurable(self):
        scheme = LabelScheme(birth_volume_bounds=(0.1, 0.5))
        assert scheme.birth_volume(0.3) is BirthVolumeClass.FAIR
        assert DEFAULT_SCHEME.birth_volume(0.3) is BirthVolumeClass.FAIR
        assert scheme.birth_volume(0.2) is BirthVolumeClass.FAIR
        assert DEFAULT_SCHEME.birth_volume(0.2) is BirthVolumeClass.LOW


class TestLabelProfile:
    def test_full_labeling(self, simple_history):
        profile = ProjectProfile.from_history(simple_history)
        labeled = label_profile(profile)
        assert labeled.name == "test-project"
        assert labeled.birth_timing is BirthTimingClass.V0
        assert labeled.top_band_timing is TopBandTimingClass.EARLY
        assert labeled.active_growth_months == 1
        features = labeled.feature_dict()
        assert set(features) == {
            "birth_volume", "birth_timing", "top_band_timing",
            "interval_birth_to_top", "interval_top_to_end",
            "active_growth", "active_pup", "has_single_vault"}

    def test_labels_enum_ordering(self):
        assert BirthVolumeClass.LOW < BirthVolumeClass.FULL
        assert BirthTimingClass.V0 < BirthTimingClass.LATE
        assert BirthTimingClass.EARLY <= BirthTimingClass.EARLY
        assert IntervalBirthToTopClass.ZERO.order == 0
