"""Property tests: quantization is total and consistent on [0, 1]."""

from hypothesis import given, settings, strategies as st

from repro.labels.classes import (
    BirthTimingClass,
    BirthVolumeClass,
    IntervalBirthToTopClass,
    IntervalTopToEndClass,
)
from repro.labels.quantization import DEFAULT_SCHEME

fractions = st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False)
months = st.integers(0, 500)


@settings(max_examples=200, deadline=None)
@given(value=fractions)
def test_birth_volume_total(value):
    assert isinstance(DEFAULT_SCHEME.birth_volume(value),
                      BirthVolumeClass)


@settings(max_examples=200, deadline=None)
@given(month=months, pct=fractions)
def test_birth_timing_total(month, pct):
    label = DEFAULT_SCHEME.birth_timing(month, pct)
    assert isinstance(label, BirthTimingClass)
    if month == 0:
        assert label is BirthTimingClass.V0
    else:
        assert label is not BirthTimingClass.V0


@settings(max_examples=200, deadline=None)
@given(month=months, pct=fractions)
def test_interval_birth_top_total(month, pct):
    label = DEFAULT_SCHEME.interval_birth_to_top(month, pct)
    assert isinstance(label, IntervalBirthToTopClass)
    assert (label is IntervalBirthToTopClass.ZERO) == (month == 0)


@settings(max_examples=200, deadline=None)
@given(pct=fractions)
def test_interval_top_end_total(pct):
    assert isinstance(DEFAULT_SCHEME.interval_top_to_end(pct),
                      IntervalTopToEndClass)


@settings(max_examples=200, deadline=None)
@given(a=fractions, b=fractions)
def test_birth_volume_monotone(a, b):
    """Larger fractions never get a smaller ordinal label."""
    low, high = sorted((a, b))
    assert DEFAULT_SCHEME.birth_volume(low).order \
        <= DEFAULT_SCHEME.birth_volume(high).order


@settings(max_examples=200, deadline=None)
@given(a=fractions, b=fractions, month=st.integers(1, 500))
def test_timing_monotone_for_nonzero_months(a, b, month):
    low, high = sorted((a, b))
    assert DEFAULT_SCHEME.birth_timing(month, low).order \
        <= DEFAULT_SCHEME.birth_timing(month, high).order
