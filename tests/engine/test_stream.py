"""Streaming handle enumeration: single-use streams, deterministic
sampling, session replay, and the flat handle-side memory guarantee."""

import tracemalloc

import pytest

from repro.engine import (
    EngineSession,
    HandleStream,
    MapStage,
    StudyConfig,
    StudyPlan,
    compute_records_from_source,
    execute_plan,
    policy_from_name,
    sample_handles,
)
from repro.errors import EngineError
from repro.sources import SyntheticSource
from repro.sources.base import SourceHandle
from tests.conftest import SMALL_POPULATION


class FakeStreamSource:
    """A lightweight source with arbitrarily many weightless projects.

    Fingerprints are padded so a materialized handle list would be
    obviously larger than a streamed one — the memory tests measure
    exactly that difference.
    """

    mode = "corpus"
    lightweight = True

    def __init__(self, n, pad=2048):
        self.n = n
        self.pad = "f" * pad

    def identity(self):
        return ["fake-stream", self.n, len(self.pad)]

    def project_ids(self):
        return tuple(f"p-{i:06d}" for i in range(self.n))

    def iter_handles(self):
        for i in range(self.n):
            pid = f"p-{i:06d}"
            yield SourceHandle(pid=pid,
                               fingerprint=f"{self.pad}:{pid}")

    def count(self):
        return self.n

    def fingerprint(self, pid):
        return f"{self.pad}:{pid}"

    def load(self, pid):  # pragma: no cover - never loaded here
        raise AssertionError("stream tests never realize projects")


def _fingerprint_length(handle):
    return len(handle.fingerprint)


def _length_plan():
    return StudyPlan([MapStage(name="lengths", fn=_fingerprint_length,
                               inputs=("handles",))])


@pytest.fixture(scope="module")
def synthetic():
    return SyntheticSource(seed=99, population=SMALL_POPULATION,
                           with_exceptions=False)


class TestSingleUse:
    def test_second_iteration_raises(self):
        stream = HandleStream(FakeStreamSource(4))
        assert len(list(stream)) == 4
        with pytest.raises(EngineError, match="single-use"):
            iter(stream)

    def test_counts_and_digest_follow_the_stream(self):
        stream = HandleStream(FakeStreamSource(4))
        empty = stream.stream_digest()
        list(stream)
        assert stream.seen == 4
        assert stream.count() == 4
        assert stream.stream_digest() != empty

    def test_digest_is_deterministic(self):
        a = HandleStream(FakeStreamSource(4))
        b = HandleStream(FakeStreamSource(4))
        list(a), list(b)
        assert a.stream_digest() == b.stream_digest()


class TestFailureCapture:
    def test_bad_fingerprint_is_quarantined(self):
        class Flaky(FakeStreamSource):
            def iter_handles(self):
                raise AssertionError("capturing path bridges by pid")

            def fingerprint(self, pid):
                if pid.endswith("2"):
                    raise ValueError("boom")
                return super().fingerprint(pid)

        stream = HandleStream(Flaky(4), policy=policy_from_name("skip"))
        handles = list(stream)
        assert len(handles) == 3
        assert [f.project for f in stream.failures] == ["p-000002"]
        assert stream.failures[0].stage == "handles"

    def test_fail_fast_propagates(self):
        class Flaky(FakeStreamSource):
            def iter_handles(self):
                for pid in self.project_ids():
                    yield SourceHandle(pid=pid,
                                       fingerprint=self.fingerprint(pid))

            def fingerprint(self, pid):
                raise ValueError("boom")

        stream = HandleStream(Flaky(2), policy=policy_from_name("fail"))
        with pytest.raises(ValueError):
            list(stream)


class TestSessionReplay:
    def test_clean_stream_registers_and_replays(self):
        calls = []

        class Spy(FakeStreamSource):
            def iter_handles(self):
                calls.append("enumerate")
                return super().iter_handles()

        source = Spy(8)
        with EngineSession() as session:
            first = list(HandleStream(source, session=session))
            second = list(HandleStream(source, session=session))
        assert calls == ["enumerate"]
        assert second == first

    def test_shard_memo_round_trip(self):
        with EngineSession() as session:
            assert session.replay_shard("k1") is None
            handles = [SourceHandle(pid="a", fingerprint="fa")]
            session.remember_shard("k1", handles)
            assert session.replay_shard("k1") == handles


class TestSampling:
    def test_identity_at_or_above_size(self):
        handles = list(FakeStreamSource(5).iter_handles())
        assert sample_handles(iter(handles), 5, seed=1) == handles
        assert sample_handles(iter(handles), 99, seed=1) == handles

    def test_deterministic_and_order_preserving(self):
        handles = list(FakeStreamSource(40).iter_handles())
        a = sample_handles(iter(handles), 10, seed=7)
        b = sample_handles(iter(handles), 10, seed=7)
        assert a == b
        assert len(a) == 10
        positions = [handles.index(h) for h in a]
        assert positions == sorted(positions)
        assert sample_handles(iter(handles), 10, seed=8) != a

    def test_stratified_spans_patterns(self, synthetic):
        handles = list(synthetic.iter_handles())
        picked = sample_handles(iter(handles), 8, seed=0,
                                stratified=True, source=synthetic)
        assert len(picked) == 8
        patterns = {synthetic.stratum(h.pid) for h in picked}
        assert len(patterns) == 8

    def test_sampled_study_runs_on_the_subset(self, synthetic):
        config = StudyConfig(sample=6, stratified=True)
        records, _ = compute_records_from_source(synthetic, config)
        again, _ = compute_records_from_source(synthetic, config)
        assert len(records) == 6
        assert [r.name for r in records] == [r.name for r in again]

    def test_config_validation(self):
        with pytest.raises(EngineError, match="sample"):
            StudyConfig(sample=0)
        with pytest.raises(EngineError, match="stratified"):
            StudyConfig(stratified=True)


class TestFlatMemory:
    def _peak(self, n):
        source = FakeStreamSource(n)
        tracemalloc.start()
        try:
            results, _ = execute_plan(_length_plan(),
                                      {"handles": HandleStream(source)},
                                      StudyConfig())
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert results["lengths"] == [len(source.fingerprint(pid))
                                      for pid in source.project_ids()]
        return peak

    def test_handle_memory_stays_flat_1x_to_20x(self):
        """20× the projects must not cost 20× the handle memory.

        Each padded handle is ~2 KiB; materializing 6000 of them would
        hold ~12 MiB, while the stream keeps one in flight at a time.
        The per-item bookkeeping (an int result and its index slot)
        still grows linearly, so "flat" means: well under the
        materialized-handle cost, and only a bookkeeping-sized constant
        per extra project — never a handle-sized one.
        """
        small = self._peak(300)
        big = self._peak(20 * 300)
        materialized = 20 * 300 * 2048
        assert big < materialized / 8
        per_extra_project = (big - small) / (20 * 300 - 300)
        assert per_extra_project < 512
