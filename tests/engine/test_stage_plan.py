"""Unit tests for the stage DAG and the plan executor."""

import pytest

from repro.engine import (
    MapStage,
    Stage,
    StageEvent,
    StudyConfig,
    StudyPlan,
    execute_plan,
)
from repro.errors import EngineError


def _double(x):
    return x * 2


def _add(a, b):
    return a + b


def _total(values):
    return sum(values)


class TestStage:
    def test_empty_name_rejected(self):
        with pytest.raises(EngineError):
            Stage(name="", fn=_double)

    def test_self_reference_rejected(self):
        with pytest.raises(EngineError):
            Stage(name="a", fn=_double, inputs=("a",))

    def test_map_stage_needs_an_input(self):
        with pytest.raises(EngineError):
            MapStage(name="m", fn=_double)


class TestStudyPlan:
    def test_duplicate_names_rejected(self):
        with pytest.raises(EngineError):
            StudyPlan([Stage(name="a", fn=_double, inputs=("x",)),
                       Stage(name="a", fn=_double, inputs=("x",))])

    def test_unknown_input_rejected(self):
        plan = StudyPlan([Stage(name="a", fn=_double,
                                inputs=("nowhere",))])
        with pytest.raises(EngineError, match="nowhere"):
            plan.execution_order(["x"])

    def test_cycle_rejected(self):
        plan = StudyPlan([
            Stage(name="a", fn=_double, inputs=("b",)),
            Stage(name="b", fn=_double, inputs=("a",)),
        ])
        with pytest.raises(EngineError, match="cycle"):
            plan.execution_order([])

    def test_topological_order(self):
        plan = StudyPlan([
            Stage(name="late", fn=_add, inputs=("mid", "early")),
            Stage(name="mid", fn=_double, inputs=("early",)),
            Stage(name="early", fn=_double, inputs=("x",)),
        ])
        order = [s.name for s in plan.execution_order(["x"])]
        assert order.index("early") < order.index("mid")
        assert order.index("mid") < order.index("late")

    def test_lookup_and_describe(self):
        plan = StudyPlan([Stage(name="a", fn=_double, inputs=("x",))])
        assert plan.stage("a").fn is _double
        assert "a" in plan
        assert "a" in plan.describe()
        with pytest.raises(EngineError):
            plan.stage("missing")


class TestStudyConfig:
    def test_defaults_serial_uncached(self):
        config = StudyConfig()
        assert config.jobs == 1
        assert config.cache_dir is None

    def test_zero_jobs_rejected(self):
        with pytest.raises(EngineError):
            StudyConfig(jobs=0)

    def test_zero_chunk_rejected(self):
        with pytest.raises(EngineError):
            StudyConfig(chunk_size=0)

    def test_cache_dir_coerced_to_path(self, tmp_path):
        from pathlib import Path
        config = StudyConfig(cache_dir=str(tmp_path))
        assert isinstance(config.cache_dir, Path)

    def test_replace(self):
        config = StudyConfig().replace(jobs=3)
        assert config.jobs == 3


class TestExecutePlan:
    def test_linear_plan(self):
        plan = StudyPlan([
            Stage(name="doubled", fn=_double, inputs=("x",)),
            Stage(name="sum", fn=_add, inputs=("doubled", "x")),
        ])
        results, report = execute_plan(plan, {"x": 5})
        assert results["doubled"] == 10
        assert results["sum"] == 15
        assert {t.stage for t in report.timings} == {"doubled", "sum"}
        assert report.total_seconds >= 0
        assert "Execution report" in report.format_table()

    def test_map_stage_serial(self):
        plan = StudyPlan([
            MapStage(name="mapped", fn=_add, inputs=("items", "offset")),
            Stage(name="total", fn=_total, inputs=("mapped",)),
        ])
        results, report = execute_plan(plan,
                                       {"items": [1, 2, 3], "offset": 10})
        assert results["mapped"] == [11, 12, 13]
        assert results["total"] == 36
        assert report.timing("mapped").items == 3

    def test_map_stage_parallel_matches_serial(self):
        plan = StudyPlan([MapStage(name="mapped", fn=_double,
                                   inputs=("items",))])
        serial, _ = execute_plan(plan, {"items": list(range(20))})
        parallel, _ = execute_plan(plan, {"items": list(range(20))},
                                   StudyConfig(jobs=2))
        assert parallel["mapped"] == serial["mapped"]

    def test_progress_events_stream(self):
        events: list[StageEvent] = []
        plan = StudyPlan([Stage(name="doubled", fn=_double,
                                inputs=("x",))])
        execute_plan(plan, {"x": 1},
                     StudyConfig(progress=events.append))
        phases = [(e.stage, e.phase) for e in events]
        assert phases == [("doubled", "start"), ("doubled", "finish")]

    def test_missing_timing_raises(self):
        plan = StudyPlan([Stage(name="doubled", fn=_double,
                                inputs=("x",))])
        _, report = execute_plan(plan, {"x": 1})
        with pytest.raises(EngineError):
            report.timing("absent")
