"""Fault layer: policies, failure records, injection, hardened executor.

The acceptance bar of the fault-tolerance layer, exercised end-to-end:

* every :class:`ErrorPolicy` mode against every injected fault kind
  (parse error, transient source error, cache corruption, worker
  crash, chunk timeout);
* the golden survivor property — a skip-run over a corpus with K bad
  projects renders a byte-identical report to a clean run over the
  remaining projects;
* pool-crash recovery (degraded run, complete results) and the
  all-items-failed guard;
* handle-stage protection for lightweight sources whose fingerprinting
  fails in the parent process.
"""

import time

import pytest

from repro.engine import (
    ErrorPolicy,
    FaultPlan,
    FaultSpec,
    MapStage,
    ProjectFailure,
    StudyConfig,
    StudyPlan,
    execute_plan,
    execute_study,
    execute_study_from_source,
    policy_from_name,
    safe_source_handles,
)
from repro.errors import (
    EngineError,
    ParseError,
    SourceError,
    TransientSourceError,
)
from repro.report.markdown import markdown_report
from repro.sources import SyntheticSource
from tests.conftest import SMALL_POPULATION

#: A zero-sleep retry policy so tests never wait on backoff.
FAST_RETRY = ErrorPolicy.retry(max_retries=2, backoff_base=0.0)


@pytest.fixture(scope="module")
def source():
    return SyntheticSource(seed=99, population=SMALL_POPULATION,
                           with_exceptions=False)


@pytest.fixture(scope="module")
def clean_report(source):
    results, _ = execute_study_from_source(source, StudyConfig())
    return markdown_report(results)


def study(source, **kwargs):
    kwargs.setdefault("error_policy", ErrorPolicy.skip())
    return execute_study_from_source(source, StudyConfig(**kwargs))


class TestProjectFailure:
    def test_from_exception(self):
        try:
            raise ParseError("bad DDL near line 3")
        except ParseError as exc:
            failure = ProjectFailure.from_exception(
                "proj-01", "records", exc, attempts=2)
        assert failure.project == "proj-01"
        assert failure.stage == "records"
        assert failure.error_type == "ParseError"
        assert "bad DDL" in failure.message
        assert "ParseError" in failure.traceback
        assert failure.attempts == 2

    def test_summary_mentions_attempts_only_when_retried(self):
        once = ProjectFailure("p", "records", "ParseError", "boom")
        thrice = ProjectFailure("p", "records", "ParseError", "boom",
                                attempts=3)
        assert "attempts" not in once.summary()
        assert "after 3 attempts" in thrice.summary()
        assert "p [records] ParseError: boom" in once.summary()


class TestErrorPolicy:
    def test_default_is_fail_fast(self):
        policy = ErrorPolicy()
        assert policy.mode == "fail"
        assert not policy.captures
        assert StudyConfig().error_policy == policy

    def test_validation(self):
        with pytest.raises(EngineError):
            ErrorPolicy(mode="explode")
        with pytest.raises(EngineError):
            ErrorPolicy(mode="retry", max_retries=-1)
        with pytest.raises(EngineError):
            ErrorPolicy(backoff_base=-0.1)

    def test_attempts_for(self):
        retry = ErrorPolicy.retry(max_retries=3)
        assert retry.attempts_for(TransientSourceError("x")) == 4
        # Permanent failures never burn the retry budget.
        assert retry.attempts_for(ParseError("x")) == 1
        assert retry.attempts_for(SourceError("x")) == 1
        assert ErrorPolicy.skip().attempts_for(
            TransientSourceError("x")) == 1

    def test_backoff_deterministic_and_bounded(self):
        policy = ErrorPolicy.retry(backoff_base=0.05)
        first = policy.backoff_seconds("proj", 1)
        assert first == policy.backoff_seconds("proj", 1)
        # Exponential envelope with ±25 % jitter.
        assert 0.05 * 0.75 <= first <= 0.05 * 1.25
        second = policy.backoff_seconds("proj", 2)
        assert 0.10 * 0.75 <= second <= 0.10 * 1.25
        # Different projects jitter differently (with high probability
        # for any fixed pair of ids; this pair differs).
        assert policy.backoff_seconds("a", 1) \
            != policy.backoff_seconds("b", 1)
        assert policy.backoff_seconds("proj", 30) <= policy.backoff_cap

    def test_policy_from_name(self):
        assert policy_from_name("fail") == ErrorPolicy.fail_fast()
        assert policy_from_name("skip") == ErrorPolicy.skip()
        assert policy_from_name("retry", max_retries=5).max_retries == 5
        with pytest.raises(EngineError):
            policy_from_name("ignore")


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(EngineError):
            FaultSpec(kind="meteor", target="x")
        with pytest.raises(EngineError):
            FaultSpec(kind="parse", target="")
        with pytest.raises(EngineError):
            FaultSpec(kind="parse", target="x", times=0)

    def test_matching(self):
        spec = FaultSpec(kind="parse", target="siesta-01")
        assert spec.matches("siesta-01", "records", seed=0)
        assert not spec.matches("siesta-02", "records", seed=0)
        assert not spec.matches("siesta-01", "analysis", seed=0)
        glob = FaultSpec(kind="parse", target="siesta-*")
        assert glob.matches("siesta-02", "records", seed=0)
        assert not glob.matches("flatliner-01", "records", seed=0)

    def test_sample_target_deterministic_and_seeded(self):
        spec = FaultSpec(kind="parse", target="~3")
        pids = [f"proj-{i:02d}" for i in range(60)]
        picks = [p for p in pids if spec.matches(p, "records", seed=7)]
        assert picks == [p for p in pids
                         if spec.matches(p, "records", seed=7)]
        # Roughly 1-in-3, and a different seed picks differently.
        assert 5 <= len(picks) <= 35
        assert picks != [p for p in pids
                         if spec.matches(p, "records", seed=8)]
        everything = FaultSpec(kind="parse", target="~1")
        assert all(everything.matches(p, "records", seed=0)
                   for p in pids)

    def test_bad_sample_target(self):
        with pytest.raises(EngineError):
            FaultSpec(kind="parse", target="~x").matches(
                "p", "records", 0)
        with pytest.raises(EngineError):
            FaultSpec(kind="parse", target="~0").matches(
                "p", "records", 0)


class TestFaultPlan:
    def test_spec_roundtrip(self):
        plan = FaultPlan(seed=7, faults=(
            FaultSpec(kind="parse", target="flatliner-01"),
            FaultSpec(kind="source", target="siesta-*", times=2),
            FaultSpec(kind="cache", target="~10", stage="analysis"),
        ))
        assert FaultPlan.parse(plan.to_spec()) == plan
        assert plan.to_spec() == ("seed=7;parse@flatliner-01;"
                                  "source@siesta-**2;cache@~10#analysis")

    def test_parse_rejects_garbage(self):
        for bad in ("seed=x", "parse", "parse@", "parse@p*x",
                    "meteor@p"):
            with pytest.raises(EngineError):
                FaultPlan.parse(bad)

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"REPRO_FAULT_PLAN": "  "}) is None
        plan = FaultPlan.from_env(
            {"REPRO_FAULT_PLAN": "parse@p-01;seed=3"})
        assert plan.seed == 3
        assert plan.faults[0].target == "p-01"

    def test_check_raises_by_kind(self):
        plan = FaultPlan.parse("parse@a;source@b;crash@c;cache@d")
        with pytest.raises(ParseError):
            plan.check("a", "records", attempt=1)
        with pytest.raises(TransientSourceError):
            plan.check("b", "records", attempt=1)
        # In-parent "crash" raises instead of killing the test run.
        with pytest.raises(EngineError):
            plan.check("c", "records", attempt=1)
        # Cache faults fire at the cache layer, never in check().
        plan.check("d", "records", attempt=1)
        assert plan.wants_cache_corruption("d", "records")
        assert not plan.wants_cache_corruption("a", "records")
        plan.check("unrelated", "records", attempt=1)

    def test_times_bounds_the_attempts(self):
        plan = FaultPlan.parse("source@p*2")
        for attempt in (1, 2):
            with pytest.raises(TransientSourceError):
                plan.check("p", "records", attempt=attempt)
        plan.check("p", "records", attempt=3)  # healed

    def test_bool(self):
        assert not FaultPlan()
        assert FaultPlan.parse("parse@p")


class TestPolicyByFaultMatrix:
    """Every policy mode against every injectable fault kind."""

    def test_fail_parse_propagates(self, source):
        with pytest.raises(ParseError):
            study(source, error_policy=ErrorPolicy.fail_fast(),
                  faults=FaultPlan.parse("parse@flatliner-01"))

    def test_fail_source_propagates(self, source):
        with pytest.raises(TransientSourceError):
            study(source, error_policy=ErrorPolicy.fail_fast(),
                  faults=FaultPlan.parse("source@flatliner-01"))

    def test_skip_quarantines_and_continues(self, source):
        results, report = study(
            source, faults=FaultPlan.parse("parse@flatliner-01"))
        assert len(results.records) == len(source) - 1
        assert [f.project for f in report.failures] == ["flatliner-01"]
        failure = report.failures[0]
        assert failure.error_type == "ParseError"
        assert failure.stage == "records"
        assert failure.attempts == 1
        assert report.timing("records").failures == 1
        assert not report.degraded

    def test_skip_does_not_retry_transients(self, source):
        _, report = study(
            source, faults=FaultPlan.parse("source@flatliner-01*3"))
        assert report.failures[0].attempts == 1
        assert report.retries == 0

    def test_retry_heals_transient(self, source, clean_report):
        results, report = study(
            source, error_policy=FAST_RETRY,
            faults=FaultPlan.parse("source@flatliner-01*2"))
        assert not report.failures
        assert report.retries == 2
        assert report.timing("records").retries == 2
        assert markdown_report(results) == clean_report

    def test_retry_budget_exhausted(self, source):
        _, report = study(
            source, error_policy=FAST_RETRY,
            faults=FaultPlan.parse("source@flatliner-01*9"))
        assert [f.project for f in report.failures] == ["flatliner-01"]
        assert report.failures[0].attempts == 1 + FAST_RETRY.max_retries
        assert report.failures[0].error_type == "TransientSourceError"

    def test_retry_never_replays_permanent_faults(self, source):
        _, report = study(
            source, error_policy=FAST_RETRY,
            faults=FaultPlan.parse("parse@flatliner-01*9"))
        assert report.failures[0].attempts == 1
        assert report.retries == 0

    def test_cache_corruption_self_heals(self, source, clean_report,
                                         tmp_path):
        config = dict(cache_dir=tmp_path / "cache")
        cold, _ = study(source, **config)
        corrupted, report = study(
            source, faults=FaultPlan.parse("cache@flatliner-01"),
            **config)
        assert report.quarantined == 1
        assert not report.failures
        assert report.timing("records").cache_hits == len(source) - 1
        assert report.timing("records").cache_misses == 1
        assert markdown_report(corrupted) == clean_report
        assert (tmp_path / "cache" / "corrupt").is_dir()
        # The recompute repopulated the slot: fully warm again.
        warm, warm_report = study(source, **config)
        assert warm_report.timing("records").cache_hits == len(source)

    def test_crash_recovery_degrades_but_completes(self, source,
                                                   clean_report):
        results, report = study(
            source, jobs=2,
            faults=FaultPlan.parse("crash@flatliner-01"))
        assert report.degraded
        assert not report.failures
        assert markdown_report(results) == clean_report

    def test_crash_recovery_respects_policy_on_refire(self, source):
        # times=2: the fault fires again during the serial re-run,
        # where it raises EngineError instead of killing the process.
        results, report = study(
            source, jobs=2,
            faults=FaultPlan.parse("crash@flatliner-01*2"))
        assert report.degraded
        assert [f.project for f in report.failures] == ["flatliner-01"]
        assert report.failures[0].error_type == "EngineError"
        assert len(results.records) == len(source) - 1

    def test_all_items_failed_raises(self, source):
        with pytest.raises(EngineError, match="all .* items failed"):
            study(source, faults=FaultPlan.parse("parse@~1"))


class TestGoldenSurvivors:
    def test_skip_run_equals_clean_run_over_survivors(
            self, source, small_corpus):
        """Byte-for-byte: skipping K bad projects == never having them."""
        bad = {"flatliner-02", "siesta-01"}
        skipped, report = study(
            source,
            faults=FaultPlan.parse("parse@flatliner-02;parse@siesta-01"))
        assert sorted(f.project for f in report.failures) == sorted(bad)
        survivors = [p for p in small_corpus.projects
                     if p.name not in bad]
        clean, _ = execute_study(survivors, StudyConfig(),
                                 source="corpus")
        assert markdown_report(skipped) == markdown_report(clean)

    def test_parallel_skip_same_bytes(self, source):
        plan = FaultPlan.parse("parse@flatliner-02;parse@siesta-01")
        serial, _ = study(source, faults=plan)
        parallel, report = study(source, jobs=4, faults=plan)
        assert len(report.failures) == 2
        assert markdown_report(parallel) == markdown_report(serial)

    def test_faults_table_column(self, source):
        _, report = study(
            source, faults=FaultPlan.parse("parse@flatliner-02"))
        table = report.format_table()
        assert "faults" in table
        assert "1 fail / 0 retry" in table


def _slow_fn(item):
    time.sleep(2.0 if item == "slow" else 0.0)
    return item


def _timeout_plan():
    return StudyPlan(stages=(
        MapStage(name="mapped", fn=_slow_fn, inputs=("items",)),))


class TestStageTimeout:
    def test_timeout_skips_the_chunk(self):
        config = StudyConfig(jobs=2, chunk_size=1, stage_timeout=0.25,
                             error_policy=ErrorPolicy.skip())
        results, report = execute_plan(
            _timeout_plan(), {"items": ["slow", "fast"]}, config)
        assert results["mapped"] == ["fast"]
        assert report.degraded
        assert [f.error_type for f in report.failures] \
            == ["TimeoutError"]

    def test_timeout_fails_fast_by_default(self):
        config = StudyConfig(jobs=2, chunk_size=1, stage_timeout=0.25)
        with pytest.raises(EngineError, match="did not finish"):
            execute_plan(_timeout_plan(),
                         {"items": ["slow", "fast"]}, config)


class FlakySource(SyntheticSource):
    """Fingerprinting fails ``fail_times`` times for chosen projects."""

    def __init__(self, *args, flaky_pids=(), fail_times=1, **kwargs):
        super().__init__(*args, **kwargs)
        self._flaky = dict.fromkeys(flaky_pids, fail_times)

    def fingerprint(self, pid):
        if self._flaky.get(pid, 0) > 0:
            self._flaky[pid] -= 1
            raise TransientSourceError(f"flaky fingerprint for {pid}")
        return super().fingerprint(pid)


class TestHandleStageProtection:
    def make(self, **kwargs):
        return FlakySource(seed=99, population=SMALL_POPULATION,
                           with_exceptions=False, **kwargs)

    def test_no_policy_propagates(self):
        flaky = self.make(flaky_pids=["siesta-01"])
        with pytest.raises(TransientSourceError):
            safe_source_handles(flaky, None)

    def test_fail_policy_propagates(self):
        flaky = self.make(flaky_pids=["siesta-01"])
        with pytest.raises(TransientSourceError):
            execute_study_from_source(flaky, StudyConfig())

    def test_skip_quarantines_handle_failures(self, clean_report):
        flaky = self.make(flaky_pids=["siesta-01"], fail_times=99)
        results, report = study(flaky)
        assert [(f.project, f.stage) for f in report.failures] \
            == [("siesta-01", "handles")]
        assert len(results.records) == len(flaky) - 1

    def test_retry_heals_handle_failures(self, clean_report):
        flaky = self.make(flaky_pids=["siesta-01"], fail_times=2)
        results, report = study(flaky, error_policy=FAST_RETRY)
        assert not report.failures
        assert markdown_report(results) == clean_report
