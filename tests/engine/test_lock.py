"""Unit tests for the shared-cache-dir lock and atomic line appends."""

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.engine.lock import CacheLock, append_line
from repro.errors import EngineError

MODES = pytest.mark.parametrize("use_fcntl", [True, False],
                                ids=["flock", "lockfile"])


class TestAppendLine:
    def test_appends_whole_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_line(path, b"one\n")
        append_line(path, b"two\n", fsync=True)
        assert path.read_bytes() == b"one\ntwo\n"

    def test_concurrent_appends_never_tear(self, tmp_path):
        path = tmp_path / "log.jsonl"
        line_count, writers = 200, 4

        def write(tag):
            for index in range(line_count):
                append_line(path, f"{tag}:{index:04d}\n".encode())

        threads = [threading.Thread(target=write, args=(t,))
                   for t in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = path.read_bytes().splitlines()
        assert len(lines) == line_count * writers
        # Every line is exactly one writer's record — no interleaving.
        assert all(line.count(b":") == 1 and len(line) == 6
                   for line in lines)

    def test_missing_parent_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            append_line(tmp_path / "nowhere" / "log.jsonl", b"x\n")


class TestAcquisition:
    @MODES
    def test_acquire_release_cycle(self, tmp_path, use_fcntl):
        lock = CacheLock(tmp_path, use_fcntl=use_fcntl)
        assert not lock.held
        with lock:
            assert lock.held
            holder = CacheLock.read_holder(lock.path)
            assert holder["pid"] == os.getpid()
            assert holder["heartbeat"] <= time.time()
        assert not lock.held

    @MODES
    def test_reacquirable_after_release(self, tmp_path, use_fcntl):
        lock = CacheLock(tmp_path, use_fcntl=use_fcntl)
        with lock:
            pass
        with lock:
            assert lock.held

    @MODES
    def test_double_acquire_refused(self, tmp_path, use_fcntl):
        with CacheLock(tmp_path, use_fcntl=use_fcntl) as lock:
            with pytest.raises(EngineError, match="already held"):
                lock.acquire()

    @MODES
    def test_contention_times_out_naming_holder(self, tmp_path,
                                                use_fcntl):
        with CacheLock(tmp_path, use_fcntl=use_fcntl):
            waiter = CacheLock(tmp_path, timeout=0.1,
                               use_fcntl=use_fcntl)
            with pytest.raises(EngineError) as err:
                waiter.acquire()
            assert str(os.getpid()) in str(err.value)

    @MODES
    def test_serializes_threads(self, tmp_path, use_fcntl):
        counter = tmp_path / "counter.txt"
        counter.write_text("0")
        rounds, workers = 25, 4

        def bump():
            for _ in range(rounds):
                with CacheLock(tmp_path, use_fcntl=use_fcntl):
                    value = int(counter.read_text())
                    counter.write_text(str(value + 1))

        threads = [threading.Thread(target=bump) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert int(counter.read_text()) == rounds * workers

    def test_heartbeat_requires_held_lock(self, tmp_path):
        lock = CacheLock(tmp_path)
        with pytest.raises(EngineError, match="not held"):
            lock.heartbeat()


class TestStaleTakeover:
    """Fallback-lockfile mode: provably dead holders are evicted."""

    def test_dead_pid_is_broken(self, tmp_path):
        # A real pid that is guaranteed dead: a finished subprocess.
        child = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True)
        dead_pid = int(child.stdout)
        lock = CacheLock(tmp_path, use_fcntl=False, timeout=2.0)
        lock.path.write_text(json.dumps(
            {"pid": dead_pid, "heartbeat": time.time()}))
        with lock:
            assert CacheLock.read_holder(lock.path)["pid"] == os.getpid()

    def test_stale_heartbeat_is_broken(self, tmp_path):
        lock = CacheLock(tmp_path, use_fcntl=False, timeout=2.0,
                         stale_after=0.05)
        # Live pid (our own), but a heartbeat far past stale_after.
        lock.path.write_text(json.dumps(
            {"pid": os.getpid(), "heartbeat": time.time() - 60.0}))
        with lock:
            assert lock.held

    def test_fresh_live_lock_is_respected(self, tmp_path):
        lock = CacheLock(tmp_path, use_fcntl=False, timeout=0.1,
                         stale_after=30.0)
        lock.path.write_text(json.dumps(
            {"pid": os.getpid(), "heartbeat": time.time()}))
        with pytest.raises(EngineError, match="could not lock"):
            lock.acquire()

    def test_unreadable_metadata_needs_old_mtime(self, tmp_path):
        lock = CacheLock(tmp_path, use_fcntl=False, timeout=0.1,
                         stale_after=30.0)
        lock.path.write_bytes(b"\x00garbage\x00")
        # Fresh mtime: age cannot prove staleness, so acquisition fails.
        with pytest.raises(EngineError):
            lock.acquire()
        # Backdated mtime past stale_after: broken and re-acquired.
        stamp = time.time() - 120.0
        os.utime(lock.path, (stamp, stamp))
        retry = CacheLock(tmp_path, use_fcntl=False, timeout=2.0,
                          stale_after=30.0)
        with retry:
            assert retry.held
