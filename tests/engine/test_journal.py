"""Unit tests for the per-run completion journal and its replay set."""

import os

import pytest

from repro.engine.journal import (
    JOURNAL_LIMIT,
    JournalReplay,
    RunJournal,
    journal_dir,
    journal_path,
    list_journals,
    load_replay,
    new_run_id,
    read_journal,
    resumable_runs,
)
from repro.errors import EngineError


def write_run(cache_dir, run_id, chunks=(), status=None, **begin):
    journal = RunJournal.begin(cache_dir, run_id, **begin)
    for stage, entries in chunks:
        journal.chunk(stage, entries)
    if status is not None:
        journal.mark(status)
    return journal


class TestRunIds:
    def test_shape_and_uniqueness(self):
        ids = {new_run_id() for _ in range(64)}
        assert len(ids) == 64
        for run_id in ids:
            assert run_id.startswith("r")
            assert len(run_id) == 13
            int(run_id[1:], 16)  # hex tail


class TestWriteAndRead:
    def test_roundtrip(self, tmp_path):
        entries = [("p1", "k" * 64, "d" * 64), ("p2", "j" * 64, "e" * 64)]
        journal = write_run(tmp_path, "r01", source="src-key",
                            config={"jobs": 2}, resumed_from="r00",
                            chunks=[("records", entries)],
                            status="complete")
        assert journal.chunks == 1
        assert journal.items == 2
        info = read_journal(tmp_path, "r01")
        assert info.run_id == "r01"
        assert info.source == "src-key"
        assert info.config == {"jobs": 2}
        assert info.resumed_from == "r00"
        assert info.status == "complete"
        assert info.items == 2
        assert info.chunks[0]["items"] == [list(e) for e in entries]
        assert not info.resumable

    def test_empty_chunk_not_recorded(self, tmp_path):
        journal = write_run(tmp_path, "r02",
                            chunks=[("records", [])], status="complete")
        assert journal.chunks == 0
        assert read_journal(tmp_path, "r02").chunks == []

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(EngineError, match="no journal"):
            read_journal(tmp_path, "rnope")

    def test_torn_lines_counted_not_trusted(self, tmp_path):
        write_run(tmp_path, "r03",
                  chunks=[("records", [("p1", "k" * 64, "d" * 64)])],
                  status="complete")
        path = journal_path(tmp_path, "r03")
        with path.open("ab") as handle:
            handle.write(b"j1 deadbeefdeadbeef {\"type\":\"chunk\"}\n")
            handle.write(b"{raw json, wrong format}\n")
            handle.write(b"j1 tornmidwri")  # no trailing newline
        info = read_journal(tmp_path, "r03")
        assert info.torn == 3
        assert info.status == "complete"
        assert info.items == 1


class TestStatuses:
    def test_no_end_record_is_aborted_and_resumable(self, tmp_path):
        write_run(tmp_path, "r04",
                  chunks=[("records", [("p", "k" * 64, "d" * 64)])])
        info = read_journal(tmp_path, "r04")
        assert info.status == "aborted"
        assert info.resumable

    def test_interrupted_is_resumable(self, tmp_path):
        write_run(tmp_path, "r05", status="interrupted")
        assert read_journal(tmp_path, "r05").resumable

    def test_listing_partitions_by_status(self, tmp_path):
        write_run(tmp_path, "r06", status="complete")
        write_run(tmp_path, "r07", status="interrupted")
        write_run(tmp_path, "r08")
        assert [i.run_id for i in list_journals(tmp_path)] \
            == ["r06", "r07", "r08"]
        assert [i.run_id for i in resumable_runs(tmp_path)] \
            == ["r07", "r08"]

    def test_listing_empty_cache_dir(self, tmp_path):
        assert list_journals(tmp_path) == []
        assert resumable_runs(tmp_path) == []


class TestDegradation:
    def test_unwritable_dir_goes_memory_only(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the cache dir should be")
        journal = RunJournal.begin(blocker, "r09")
        assert journal.memory_only
        # Counters still work; nothing raises.
        journal.chunk("records", [("p", "k" * 64, "d" * 64)])
        journal.mark("complete")
        assert journal.chunks == 1

    def test_deny_writes_stops_persisting(self, tmp_path):
        journal = RunJournal.begin(tmp_path, "r10")
        path = journal_path(tmp_path, "r10")
        size = path.stat().st_size
        journal.deny_writes()
        assert journal.memory_only
        journal.chunk("records", [("p", "k" * 64, "d" * 64)])
        journal.mark("complete")
        assert path.stat().st_size == size
        assert journal.chunks == 1

    def test_begin_prunes_oldest_journals(self, tmp_path):
        directory = journal_dir(tmp_path)
        directory.mkdir(parents=True)
        for index in range(JOURNAL_LIMIT + 5):
            stamp = 1_000_000 + index
            path = directory / f"old{index:03d}.jsonl"
            path.write_bytes(b"")
            os.utime(path, (stamp, stamp))
        RunJournal.begin(tmp_path, "rnew")
        remaining = sorted(p.name for p in directory.glob("*.jsonl"))
        assert len(remaining) == JOURNAL_LIMIT + 1  # cap + the new one
        assert "old000.jsonl" not in remaining
        assert "rnew.jsonl" in remaining


class TestReplay:
    def replay(self, tmp_path):
        write_run(tmp_path, "r11", source="src-key", chunks=[
            ("records", [("p1", "a" * 64, "d1"), ("p2", "b" * 64, "d2")]),
            ("records", [("p3", "c" * 64, "d3")]),
        ], status="interrupted")
        return load_replay(tmp_path, "r11")

    def test_contains_journaled_keys_only(self, tmp_path):
        replay = self.replay(tmp_path)
        assert replay.contains("a" * 64)
        assert replay.contains("c" * 64)
        assert not replay.contains("z" * 64)

    def test_chunk_counts_full_hits_only(self, tmp_path):
        replay = self.replay(tmp_path)
        assert replay.chunks_replayed == 0
        replay.mark("a" * 64)
        assert replay.items_replayed == 1
        assert replay.chunks_replayed == 0  # half of chunk one
        replay.mark("c" * 64)
        assert replay.chunks_replayed == 1  # chunk two complete
        replay.mark("b" * 64)
        assert replay.chunks_replayed == 2

    def test_verify_source_mismatch_refused(self, tmp_path):
        replay = self.replay(tmp_path)
        replay.verify_source("src-key")  # same: fine
        replay.verify_source(None)       # unknown: tolerated
        with pytest.raises(EngineError, match="cannot resume"):
            replay.verify_source("other-source")

    def test_keyless_entries_ignored(self, tmp_path):
        write_run(tmp_path, "r12", chunks=[
            ("records", [("p1", "", ""), ("p2", "b" * 64, "d2")]),
        ], status="interrupted")
        replay = JournalReplay(read_journal(tmp_path, "r12"))
        assert not replay.contains("")
        replay.mark("b" * 64)
        assert replay.chunks_replayed == 1
