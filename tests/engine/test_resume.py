"""Crash-safe runs: kill/interrupt/enospc faults, resume, shared dirs.

The acceptance bar of the crash-safety layer:

* graceful interrupt — an injected SIGINT-equivalent stops dispatch,
  drains in-flight work into cache + journal, flushes the ledger and
  surfaces :class:`RunInterrupted` with the resumable run id;
* byte-identical resume — a run SIGKILLed mid-map (a real ``kill -9``
  of a ``--jobs 2`` subprocess) resumes to output byte-identical to an
  uninterrupted cold run, with at least one chunk replayed from the
  journal rather than recomputed;
* ENOSPC degradation — when cache and journal writes start failing the
  run completes memory-only with identical output and the failure
  surfaced in counters, never an abort;
* shared cache dirs — two concurrent sessions pointing at one
  ``--cache-dir`` interleave safely: every ledger row lands whole.
"""

import dataclasses
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine import (
    CacheLock,
    EngineSession,
    FaultPlan,
    StudyConfig,
    append_line,
    execute_study_from_source,
    read_journal,
    read_ledger,
    read_ledger_report,
    resumable_runs,
)
from repro.engine.session import LEDGER_NAME
from repro.errors import RunInterrupted
from repro.report.markdown import markdown_report
from repro.sources import CorpusDirSource, SyntheticSource, export_corpus_dir
from tests.conftest import SMALL_POPULATION

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

#: Dispatched mid-corpus (10th of 16, see SMALL_POPULATION): a fault
#: fired at its dispatch point leaves earlier work journaled and later
#: work genuinely undone.
MID_SYNTHETIC = "quantum-steps-01"


@pytest.fixture(scope="module")
def source():
    return SyntheticSource(seed=99, population=SMALL_POPULATION,
                           with_exceptions=False)


def study(source, session=None, **kwargs):
    return execute_study_from_source(source, StudyConfig(**kwargs),
                                     session=session)


class TestGracefulInterrupt:
    def test_interrupt_drains_journals_and_resumes(self, source,
                                                   tmp_path):
        cache_dir = tmp_path / "cache"
        config = StudyConfig(
            cache_dir=cache_dir,
            faults=FaultPlan.parse(f"interrupt@{MID_SYNTHETIC}"))
        with pytest.raises(RunInterrupted) as err:
            execute_study_from_source(source, config)
        run_id = err.value.run_id
        assert run_id and run_id.startswith("r")
        assert str(run_id) in str(err.value)

        # The journal holds the drained chunks, marked interrupted.
        info = read_journal(cache_dir, run_id)
        assert info.status == "interrupted"
        assert 0 < info.items < len(source)
        assert [i.run_id for i in resumable_runs(cache_dir)] == [run_id]

        # The interrupted run still landed a ledger row.
        rows = read_ledger(cache_dir)
        assert rows[-1]["interrupted"] is True
        assert rows[-1]["run_uid"] == run_id

        # Resume (without the fault plan!) completes byte-identically.
        resumed, report = execute_study_from_source(
            source, dataclasses.replace(config, faults=None,
                                        resume_from=run_id))
        cold, _ = study(source)
        assert markdown_report(resumed) == markdown_report(cold)
        assert report.resumed_from == run_id
        assert report.journal_replayed >= 1
        assert report.journal_replayed_items == info.items
        assert read_journal(cache_dir, report.run_uid).status \
            == "complete"

    def test_interrupt_with_jobs_drains_in_flight(self, source,
                                                  tmp_path):
        cache_dir = tmp_path / "cache"
        config = StudyConfig(
            cache_dir=cache_dir, jobs=2,
            faults=FaultPlan.parse(f"interrupt@{MID_SYNTHETIC}"))
        with pytest.raises(RunInterrupted) as err:
            execute_study_from_source(source, config)
        info = read_journal(cache_dir, err.value.run_id)
        assert info.status == "interrupted"
        assert info.items > 0

    def test_resume_against_changed_source_refused(self, source,
                                                   tmp_path):
        from repro.errors import EngineError
        cache_dir = tmp_path / "cache"
        config = StudyConfig(
            cache_dir=cache_dir,
            faults=FaultPlan.parse(f"interrupt@{MID_SYNTHETIC}"))
        with pytest.raises(RunInterrupted) as err:
            execute_study_from_source(source, config)
        other = SyntheticSource(seed=7, population=SMALL_POPULATION,
                                with_exceptions=False)
        with pytest.raises(EngineError, match="cannot resume"):
            execute_study_from_source(
                other, dataclasses.replace(config, faults=None,
                                           resume_from=err.value.run_id))

    def test_resume_without_cache_dir_refused(self):
        from repro.errors import EngineError
        with pytest.raises(EngineError, match="resume needs a cache"):
            StudyConfig(resume_from="rdeadbeef0000")


class TestEnospcDegradation:
    def test_run_completes_memory_only_with_identical_output(
            self, source, tmp_path):
        clean, _ = study(source)
        degraded, report = study(
            source, cache_dir=tmp_path / "cache",
            faults=FaultPlan.parse("enospc@flatliner-01"))
        assert markdown_report(degraded) == markdown_report(clean)
        assert report.write_failures > 0
        assert report.journal_degraded

    def test_no_fault_run_has_no_write_failures(self, source, tmp_path):
        _, report = study(source, cache_dir=tmp_path / "cache")
        assert report.write_failures == 0
        assert not report.journal_degraded
        assert report.journal_chunks > 0


class TestKillMinusNine:
    """The full differential: SIGKILL a real subprocess mid-map."""

    def run_cli(self, tmp_path, *argv, tag="run"):
        """Run the CLI with stdout/stderr captured into files.

        A hard-killed parent (the ``kill`` fault is a real in-process
        ``kill -9``) orphans its forked pool workers, which inherit
        any stdout pipe and would keep ``communicate()``-style capture
        waiting for an EOF that never comes. Files sidestep that, and
        the subprocess runs in its own session so the orphans can be
        reaped as a group afterwards — exactly the cleanup a crashed
        real-world run needs too.
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep \
            + env.get("PYTHONPATH", "")
        out_path = tmp_path / f"{tag}.out"
        err_path = tmp_path / f"{tag}.err"
        with out_path.open("wb") as out, err_path.open("wb") as err:
            process = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", *argv],
                stdout=out, stderr=err, env=env, cwd=tmp_path,
                start_new_session=True)
            try:
                returncode = process.wait(timeout=120)
            finally:
                try:  # reap orphaned pool workers of a killed parent
                    os.killpg(process.pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
        return subprocess.CompletedProcess(
            process.args, returncode,
            out_path.read_text(), err_path.read_text())

    def test_kill_then_resume_is_byte_identical(self, small_corpus,
                                                tmp_path):
        root = export_corpus_dir(small_corpus, tmp_path / "corpus")
        target = list(CorpusDirSource(root).project_ids())[-1]
        cache = tmp_path / "cache"
        spec = f"dir:{root}"

        killed = self.run_cli(tmp_path, "study", "--source", spec,
                              "--jobs", "2", "--cache-dir", str(cache),
                              "--fault-plan", f"kill@{target}",
                              tag="killed")
        assert killed.returncode == 137, killed.stderr

        # The SIGKILLed run left a journal with completed chunks.
        runs = resumable_runs(cache)
        assert len(runs) == 1
        info = runs[0]
        assert info.status == "aborted"  # no end record: hard death
        assert info.items > 0

        resumed = self.run_cli(tmp_path, "study", "--source", spec,
                               "--jobs", "2", "--cache-dir", str(cache),
                               "--resume", info.run_id, tag="resumed")
        assert resumed.returncode == 0, resumed.stderr

        cold = self.run_cli(tmp_path, "study", "--source", spec,
                            tag="cold")
        assert cold.returncode == 0, cold.stderr
        assert resumed.stdout == cold.stdout

        # The resumed run's ledger row proves journal replay happened.
        row = read_ledger(cache)[-1]
        assert row["resumed_from"] == info.run_id
        assert row["journal_replayed"] >= 1
        assert row["interrupted"] is False

    def test_sigterm_mid_run_exits_130_with_hint(self, small_corpus,
                                                 tmp_path):
        root = export_corpus_dir(small_corpus, tmp_path / "corpus")
        cache = tmp_path / "cache"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep \
            + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "study",
             "--source", f"dir:{root}", "--jobs", "2",
             "--cache-dir", str(cache)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=tmp_path)
        # Wait until at least one chunk is journaled, then SIGTERM.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            journals = list(resumable_runs(cache))
            if journals and journals[0].items > 0:
                break
            if process.poll() is not None:
                break
            time.sleep(0.05)
        process.send_signal(signal.SIGTERM)
        _, stderr = process.communicate(timeout=60.0)
        if process.returncode == 0:
            pytest.skip("run finished before SIGTERM landed")
        assert process.returncode == 130, stderr
        match = re.search(r"resume with: repro-schema study --resume "
                          r"(r[0-9a-f]{12})", stderr)
        assert match, stderr
        assert read_journal(cache, match.group(1)).status \
            == "interrupted"


class TestSharedCacheDir:
    def test_two_concurrent_sessions_ledger_safely(self, source,
                                                   tmp_path):
        cache_dir = tmp_path / "cache"
        errors = []

        def run():
            try:
                with EngineSession() as session:
                    study(source, session, cache_dir=cache_dir)
            except BaseException as exc:  # noqa: BLE001 - test capture
                errors.append(exc)

        threads = [threading.Thread(target=run) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        records, torn = read_ledger_report(cache_dir)
        assert len(records) == 2
        assert torn == []
        digests = {row["result_digest"] for row in records}
        assert len(digests) == 1  # same study, same bytes

    def test_reader_never_sees_torn_rows_during_writes(self, tmp_path):
        ledger = tmp_path / LEDGER_NAME
        row = json.dumps({"run_id": 1, "payload": "x" * 256}) + "\n"
        stop = threading.Event()

        def write():
            while not stop.is_set():
                with CacheLock(tmp_path):
                    append_line(ledger, row.encode("utf-8"))

        with CacheLock(tmp_path):
            append_line(ledger, row.encode("utf-8"))
        writer = threading.Thread(target=write)
        writer.start()
        try:
            seen = 0
            for _ in range(200):
                records, torn = read_ledger_report(tmp_path)
                assert torn == []
                assert len(records) >= seen  # append-only, whole rows
                seen = len(records)
        finally:
            stop.set()
            writer.join()
        assert seen > 0
