"""Delta re-study: checkpoints, prefix proofs, the suffix kernel.

The golden differential suite — the acceptance bar of the append-only
incremental recompute:

* appending K versions to a cached project and refreshing re-parses
  only the K new versions (pinned via the delta counters) and yields
  records and rendered reports **byte-identical** to a cold full study
  of the grown source — for corpus directories and git repositories;
* a rewrite of old history fails the version-chain prefix proof and
  falls back to a full recompute, still byte-identical;
* a fault-injected append heals under the retry policy with the same
  output; corrupt checkpoint files read as "no checkpoint";
* the run ledger round-trips the new delta and hot-cache counters.
"""

import dataclasses
import os
import shutil
import subprocess
from datetime import timedelta

import pytest

from repro.engine import (
    DeltaStore,
    EngineSession,
    ErrorPolicy,
    FaultPlan,
    StudyConfig,
    delta_store_for,
    execute_study_from_source,
    read_ledger,
)
from repro.engine.delta import DELTA_SUBDIR, commit_chain
from repro.history.commit import Commit
from repro.history.repository import SchemaHistory
from repro.patterns.taxonomy import Pattern
from repro.report.markdown import markdown_report
from repro.sources import (
    CorpusDirSource,
    GitDirSource,
    export_corpus_dir,
    import_corpus_dir,
)
from repro.sources.synthetic import SyntheticSource

#: Enough projects for every study analysis (Shapiro-Wilk needs 3+).
POPULATION = {
    Pattern.FLATLINER: 2,
    Pattern.SIGMOID: 2,
    Pattern.QUANTUM_STEPS: 2,
    Pattern.SIESTA: 2,
}


def grow_history(history: SchemaHistory, k: int) -> SchemaHistory:
    """``history`` with ``k`` appended snapshot commits."""
    commits = list(history.commits)
    for i in range(k):
        ts = commits[-1].timestamp + timedelta(days=30)
        ddl = commits[-1].ddl_text \
            + f"\nCREATE TABLE delta_extra_{i} (id INT);\n"
        commits.append(Commit(sha=f"grow-{i}", timestamp=ts,
                              ddl_text=ddl))
    return SchemaHistory(
        history.project_name, commits,
        project_start=history.project_start,
        project_end=max(history.project_end, commits[-1].timestamp),
        dialect=history.dialect, incremental=history.incremental)


def grow_corpus_dir(root, indexes, k: int) -> None:
    """Re-export ``root`` with the chosen projects grown by ``k``."""
    corpus = import_corpus_dir(root)
    projects = list(corpus.projects)
    for idx in indexes:
        projects[idx] = dataclasses.replace(
            projects[idx],
            history=grow_history(projects[idx].history, k))
    shutil.rmtree(root)
    export_corpus_dir(dataclasses.replace(corpus, projects=projects),
                      root)


@pytest.fixture
def corpus_root(tmp_path):
    """A small corpus exported as a ``dir:`` source."""
    from repro.corpus.generator import generate_corpus
    corpus = generate_corpus(seed=99, population=POPULATION,
                             with_exceptions=False)
    root = tmp_path / "corpus"
    export_corpus_dir(corpus, root)
    return root


def study(root, cache_dir, **kwargs):
    config = StudyConfig(cache_dir=cache_dir, **kwargs)
    return execute_study_from_source(CorpusDirSource(root), config)


class TestDeltaStoreGating:
    def test_no_cache_dir_disables(self):
        source = SyntheticSource(seed=99, population=POPULATION)
        assert delta_store_for(source, StudyConfig()) is None

    def test_config_flag_disables(self, tmp_path):
        source = SyntheticSource(seed=99, population=POPULATION)
        config = StudyConfig(cache_dir=tmp_path, delta=False)
        assert delta_store_for(source, config) is None

    def test_chainless_source_disables(self, tmp_path):
        class Chainless:
            pass
        config = StudyConfig(cache_dir=tmp_path)
        assert delta_store_for(Chainless(), config) is None

    def test_active_for_chain_sources(self, corpus_root, tmp_path):
        config = StudyConfig(cache_dir=tmp_path / "cache")
        store = delta_store_for(CorpusDirSource(corpus_root), config)
        assert isinstance(store, DeltaStore)
        assert store.root == tmp_path / "cache" / DELTA_SUBDIR


class TestCheckpointLifecycle:
    def test_cold_study_writes_checkpoints(self, corpus_root, tmp_path):
        cache = tmp_path / "cache"
        _, report = study(corpus_root, cache)
        source = CorpusDirSource(corpus_root)
        store = DeltaStore(cache / DELTA_SUBDIR)
        for pid in source.project_ids():
            checkpoint = store.load(pid, "corpus")
            assert checkpoint is not None
            history = source.load(pid).history
            assert checkpoint.chain == commit_chain(history.commits)
            assert checkpoint.last_commit_ts \
                == history.commits[-1].timestamp

    def test_no_delta_config_writes_none(self, corpus_root, tmp_path):
        cache = tmp_path / "cache"
        study(corpus_root, cache, delta=False)
        assert not (cache / DELTA_SUBDIR).exists()

    def test_corrupt_checkpoint_reads_as_missing(self, corpus_root,
                                                 tmp_path):
        cache = tmp_path / "cache"
        study(corpus_root, cache)
        store = DeltaStore(cache / DELTA_SUBDIR)
        pid = CorpusDirSource(corpus_root).project_ids()[0]
        path = store.path_for(pid, "corpus")
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert store.load(pid, "corpus") is None

    def test_wrong_mode_reads_as_missing(self, corpus_root, tmp_path):
        cache = tmp_path / "cache"
        study(corpus_root, cache)
        store = DeltaStore(cache / DELTA_SUBDIR)
        pid = CorpusDirSource(corpus_root).project_ids()[0]
        assert store.load(pid, "corpus") is not None
        assert store.load(pid, "histories") is None


class TestCorpusAppend:
    K = 3

    def test_refresh_parses_only_the_suffix(self, corpus_root,
                                            tmp_path):
        cache = tmp_path / "cache"
        study(corpus_root, cache)
        old_chain_len = len(
            CorpusDirSource(corpus_root).load(
                CorpusDirSource(corpus_root).project_ids()[0]
            ).history.commits)
        grow_corpus_dir(corpus_root, [0, 1], self.K)

        results, report = study(corpus_root, cache)
        assert report.delta_appended == 2
        assert report.delta_rewritten == 0
        assert report.delta_parsed == 2 * self.K
        assert report.delta_reused >= 2 * old_chain_len
        # Only the grown projects recomputed; the rest were cache hits.
        assert report.cache_misses == 2

        cold, cold_report = study(corpus_root, tmp_path / "cold")
        assert cold_report.delta_appended == 0
        assert results.records == cold.records
        assert markdown_report(results) == markdown_report(cold)

    def test_refresh_summary_line(self, corpus_root, tmp_path):
        cache = tmp_path / "cache"
        study(corpus_root, cache)
        grow_corpus_dir(corpus_root, [0], 1)
        _, report = study(corpus_root, cache)
        summary = report.format_delta_summary()
        assert "1 appended" in summary
        assert "1 parsed" in summary

    def test_second_refresh_is_pure_cache_hit(self, corpus_root,
                                              tmp_path):
        cache = tmp_path / "cache"
        study(corpus_root, cache)
        grow_corpus_dir(corpus_root, [0], 2)
        first, _ = study(corpus_root, cache)
        again, report = study(corpus_root, cache)
        assert report.cache_misses == 0
        assert report.delta_appended == 0
        assert again.records == first.records

    def test_repeated_appends_keep_extending(self, corpus_root,
                                             tmp_path):
        cache = tmp_path / "cache"
        study(corpus_root, cache)
        for _ in range(3):
            grow_corpus_dir(corpus_root, [0], 1)
            results, report = study(corpus_root, cache)
            assert report.delta_appended == 1
            assert report.delta_parsed == 1
        cold, _ = study(corpus_root, tmp_path / "cold")
        assert results.records == cold.records


class TestRewriteFallback:
    def rewrite_first_commit(self, root) -> None:
        corpus = import_corpus_dir(root)
        projects = list(corpus.projects)
        history = projects[0].history
        commits = list(history.commits)
        commits[0] = dataclasses.replace(
            commits[0],
            ddl_text=commits[0].ddl_text
            + "\nCREATE TABLE rewritten_base (id INT);\n")
        projects[0] = dataclasses.replace(
            projects[0],
            history=SchemaHistory(
                history.project_name, commits,
                project_start=history.project_start,
                project_end=history.project_end,
                dialect=history.dialect,
                incremental=history.incremental))
        shutil.rmtree(root)
        export_corpus_dir(
            dataclasses.replace(corpus, projects=projects), root)

    def test_rewritten_history_recomputes_in_full(self, corpus_root,
                                                  tmp_path):
        cache = tmp_path / "cache"
        study(corpus_root, cache)
        self.rewrite_first_commit(corpus_root)
        results, report = study(corpus_root, cache)
        assert report.delta_rewritten == 1
        assert report.delta_appended == 0
        cold, _ = study(corpus_root, tmp_path / "cold")
        assert results.records == cold.records
        assert markdown_report(results) == markdown_report(cold)

    def test_rewrite_then_append_recovers(self, corpus_root, tmp_path):
        # The full recompute after a rewrite refreshes the checkpoint,
        # so the *next* append rides the delta path again.
        cache = tmp_path / "cache"
        study(corpus_root, cache)
        self.rewrite_first_commit(corpus_root)
        study(corpus_root, cache)
        grow_corpus_dir(corpus_root, [0], 2)
        results, report = study(corpus_root, cache)
        assert report.delta_appended == 1
        assert report.delta_parsed == 2
        cold, _ = study(corpus_root, tmp_path / "cold")
        assert results.records == cold.records


class TestFaultInjectedAppend:
    def test_retry_heals_and_stays_identical(self, corpus_root,
                                             tmp_path):
        cache = tmp_path / "cache"
        study(corpus_root, cache)
        grow_corpus_dir(corpus_root, [0], 2)
        pid = CorpusDirSource(corpus_root).project_ids()[0]
        config = StudyConfig(
            cache_dir=cache,
            error_policy=ErrorPolicy.retry(max_retries=2,
                                           backoff_base=0.0),
            faults=FaultPlan.parse(f"source@{pid}*1"))
        results, report = execute_study_from_source(
            CorpusDirSource(corpus_root), config)
        assert not report.failures
        assert report.retries == 1
        assert report.delta_appended >= 1
        cold, _ = study(corpus_root, tmp_path / "cold")
        assert results.records == cold.records


class TestCorruptCheckpointFallback:
    def test_torn_checkpoint_recomputes_identically(self, corpus_root,
                                                    tmp_path):
        cache = tmp_path / "cache"
        study(corpus_root, cache)
        grow_corpus_dir(corpus_root, [0], 2)
        pid = CorpusDirSource(corpus_root).project_ids()[0]
        store = DeltaStore(cache / DELTA_SUBDIR)
        store.path_for(pid, "corpus").write_bytes(b"garbage")
        results, report = study(corpus_root, cache)
        assert report.delta_appended == 0
        assert report.delta_rewritten == 0
        cold, _ = study(corpus_root, tmp_path / "cold")
        assert results.records == cold.records


class TestLedgerRoundTrip:
    def test_delta_and_hot_counters_persist(self, corpus_root,
                                            tmp_path):
        cache = tmp_path / "cache"
        config = StudyConfig(cache_dir=cache)
        with EngineSession(config) as session:
            session.refresh(CorpusDirSource(corpus_root))
            grow_corpus_dir(corpus_root, [0], 2)
            session.refresh(CorpusDirSource(corpus_root))
        runs = read_ledger(cache)
        assert len(runs) == 2
        cold, warm = runs
        assert cold["delta_appended"] == 0
        assert warm["delta_appended"] == 1
        assert warm["delta_parsed"] == 2
        assert warm["delta_rewritten"] == 0
        for run in runs:
            assert "hot_hits" in run and "hot_misses" in run
            assert "evictions" in run


needs_git = pytest.mark.skipif(shutil.which("git") is None,
                               reason="git binary not available")


def _git(root, *args, env_date=None):
    env = dict(os.environ,
               GIT_AUTHOR_NAME="t", GIT_AUTHOR_EMAIL="t@t",
               GIT_COMMITTER_NAME="t", GIT_COMMITTER_EMAIL="t@t",
               HOME=str(root))
    if env_date:
        env["GIT_AUTHOR_DATE"] = env_date
        env["GIT_COMMITTER_DATE"] = env_date
    subprocess.run(["git", "-C", str(root), *args], check=True,
                   capture_output=True, env=env)


@pytest.fixture
def git_repo(tmp_path):
    """Three DDL projects, two commits of history."""
    root = tmp_path / "repo"
    root.mkdir()
    _git(root, "init", "-q", ".")
    (root / "schema.sql").write_text("CREATE TABLE users (id INT);\n")
    (root / "audit.sql").write_text(
        "CREATE TABLE audit (at TIMESTAMP);\n")
    (root / "logs.sql").write_text("CREATE TABLE logs (msg TEXT);\n")
    _git(root, "add", "-A")
    _git(root, "commit", "-qm", "one",
         env_date="2020-01-15T10:00:00Z")
    (root / "schema.sql").write_text(
        "CREATE TABLE users (id INT, name TEXT);\n")
    _git(root, "commit", "-qam", "two",
         env_date="2020-06-20T10:00:00Z")
    return root


@needs_git
class TestGitAppend:
    def test_appended_commit_rides_the_delta_path(self, git_repo,
                                                  tmp_path):
        cache = tmp_path / "cache"
        config = StudyConfig(cache_dir=cache)
        execute_study_from_source(GitDirSource(git_repo), config)

        (git_repo / "schema.sql").write_text(
            "CREATE TABLE users (id INT, name TEXT);\n"
            "CREATE TABLE posts (id INT);\n")
        _git(git_repo, "commit", "-qam", "three",
             env_date="2021-01-10T00:00:00Z")

        results, report = execute_study_from_source(
            GitDirSource(git_repo), config)
        assert report.delta_appended == 1
        assert report.delta_parsed == 1
        assert report.delta_reused == 2
        assert report.cache_misses == 1

        cold, _ = execute_study_from_source(
            GitDirSource(git_repo),
            StudyConfig(cache_dir=tmp_path / "cold"))
        assert results.records == cold.records
        assert markdown_report(results) == markdown_report(cold)

    def test_amended_history_falls_back(self, git_repo, tmp_path):
        cache = tmp_path / "cache"
        config = StudyConfig(cache_dir=cache)
        execute_study_from_source(GitDirSource(git_repo), config)

        (git_repo / "schema.sql").write_text(
            "CREATE TABLE users (id INT, name TEXT, email TEXT);\n")
        _git(git_repo, "commit", "-qa", "--amend", "-m", "two'",
             env_date="2020-06-20T10:00:00Z")

        results, report = execute_study_from_source(
            GitDirSource(git_repo), config)
        assert report.delta_rewritten == 1
        assert report.delta_appended == 0
        cold, _ = execute_study_from_source(
            GitDirSource(git_repo),
            StudyConfig(cache_dir=tmp_path / "cold"))
        assert results.records == cold.records

    def test_version_chain_is_oldest_first(self, git_repo):
        source = GitDirSource(git_repo)
        chain = source.version_chain("schema.sql")
        assert len(chain) == 2
        history = source.load("schema.sql")
        assert "name" not in history.commits[0].ddl_text
        assert "name" in history.commits[1].ddl_text

    def test_load_delta_fetches_only_the_suffix(self, git_repo):
        source = GitDirSource(git_repo)
        suffix = source.load_delta("schema.sql", 1)
        assert len(suffix) == 1
        assert "name" in suffix[0].ddl_text
        assert source.load_delta("schema.sql", 2) == []
