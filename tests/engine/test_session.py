"""Engine sessions: warm pool, hot cache, handle registry, run ledger.

The acceptance bar of the session layer:

* golden equivalence — the same study executed twice through one
  session renders byte-identical reports to two cold runs, with the
  second in-session run served entirely from cache;
* pool persistence — two parallel runs through one session spawn
  exactly one worker pool, and a ``BrokenProcessPool`` respawns it
  transparently on the next use;
* the hot layer — repeat gets skip the disk entirely, the LRU bound
  evicts, and injected cache corruption is never masked by a stale
  hot copy;
* the run ledger — every execution lands in ``session.runs`` and in
  ``<cache_dir>/ledger.jsonl`` with its hit rate, failures and result
  digest.
"""

import json

import pytest

from repro.engine import (
    EngineSession,
    ErrorPolicy,
    FaultPlan,
    HotResultCache,
    MISS,
    StudyConfig,
    execute_study_from_source,
    read_ledger,
    source_session_key,
)
from repro.engine.session import LEDGER_NAME
from repro.errors import EngineError
from repro.report.markdown import markdown_report
from repro.sources import (
    CorpusDirSource,
    SyntheticSource,
    export_corpus_dir,
)
from repro.sources.base import InMemorySource
from tests.conftest import SMALL_POPULATION


@pytest.fixture(scope="module")
def source():
    return SyntheticSource(seed=99, population=SMALL_POPULATION,
                           with_exceptions=False)


def study(source, session=None, **kwargs):
    return execute_study_from_source(source, StudyConfig(**kwargs),
                                     session=session)


class TestGoldenEquivalence:
    def test_twice_in_one_session_equals_two_cold_runs(self, source,
                                                       tmp_path):
        cache_dir = tmp_path / "cache"
        cold1, _ = study(source, cache_dir=cache_dir / "a")
        cold2, _ = study(source, cache_dir=cache_dir / "a")
        with EngineSession() as session:
            warm1, r1 = study(source, session,
                              cache_dir=cache_dir / "b")
            warm2, r2 = study(source, session,
                              cache_dir=cache_dir / "b")
        expected = markdown_report(cold1)
        assert markdown_report(cold2) == expected
        assert markdown_report(warm1) == expected
        assert markdown_report(warm2) == expected
        # The second in-session run is pure hits, served hot.
        assert r1.timing("records").cache_misses == len(source)
        assert r2.timing("records").cache_hits == len(source)
        assert r2.cache_misses == 0
        assert session.runs[0].result_digest == \
            session.runs[1].result_digest

    def test_parallel_session_run_same_bytes(self, source):
        serial, _ = study(source)
        with EngineSession() as session:
            parallel, _ = study(source, session, jobs=2)
        assert markdown_report(parallel) == markdown_report(serial)


class TestPoolPersistence:
    def test_one_spawn_across_two_runs(self, source):
        # No cache dir: the second run genuinely needs the pool again.
        with EngineSession() as session:
            study(source, session, jobs=2)
            study(source, session, jobs=2)
            assert session.pool_spawns == 1
            assert session.runs[1].pool_spawns == 0

    def test_jobs_change_retires_the_pool(self, source):
        with EngineSession() as session:
            study(source, session, jobs=2)
            study(source, session, jobs=3)
            assert session.pool_spawns == 2

    def test_broken_pool_respawns_transparently(self, source):
        crash = FaultPlan.parse("crash@flatliner-01")
        with EngineSession() as session:
            degraded, r1 = study(source, session, jobs=2,
                                 error_policy=ErrorPolicy.skip(),
                                 faults=crash)
            assert r1.degraded
            assert session.pool_spawns == 1
            clean, r2 = study(source, session, jobs=2)
            assert not r2.degraded
            # The dead pool was discarded and a fresh one spawned.
            assert session.pool_spawns == 2
        assert markdown_report(degraded) == markdown_report(clean)


class TestHotLayer:
    def test_lru_eviction(self, tmp_path):
        cache = HotResultCache(tmp_path, hot_entries=2)
        for key in ("a" * 64, "b" * 64, "c" * 64):
            cache.put(key, key[0])
        assert cache.evictions == 1
        # The evicted entry still serves from disk, then re-warms.
        assert cache.get("a" * 64) == "a"
        assert cache.hot_misses == 1
        assert cache.get("a" * 64) == "a"
        assert cache.hot_hits == 1

    def test_hot_hit_skips_disk(self, tmp_path):
        cache = HotResultCache(tmp_path)
        key = "d" * 64
        cache.put(key, {"value": 7})
        # Remove the disk entry: only the hot layer can answer now.
        cache.disk._path(key).unlink()
        assert cache.get(key) == {"value": 7}
        assert cache.hot_hits == 1
        cache.forget_hot()
        assert cache.get(key) is MISS

    def test_corruption_not_masked_by_hot_copy(self, tmp_path):
        cache = HotResultCache(tmp_path)
        key = "e" * 64
        cache.put(key, "precious")
        assert cache.corrupt_entry(key)
        # A stale hot copy must not hide the injected corruption.
        assert cache.get(key) is MISS
        assert cache.quarantined == 1

    def test_zero_entries_disables_hot_layer(self, tmp_path):
        cache = HotResultCache(tmp_path, hot_entries=0)
        key = "f" * 64
        cache.put(key, 1)
        assert cache.get(key) == 1
        assert cache.hot_hits == 0


class TestRunLedger:
    def test_two_runs_two_entries(self, source, tmp_path):
        cache_dir = tmp_path / "cache"
        with EngineSession() as session:
            study(source, session, cache_dir=cache_dir)
            study(source, session, cache_dir=cache_dir)
        assert [r.run_id for r in session.runs] == [1, 2]
        assert session.runs[1].cache_hit_rate == 1.0
        assert session.runs[1].hot_hits == len(source)
        persisted = read_ledger(cache_dir)
        assert len(persisted) == 2
        assert persisted[0]["result_digest"] == \
            persisted[1]["result_digest"]
        assert persisted[1]["cache_hit_rate"] == 1.0
        assert persisted[0]["config"]["seed"] == StudyConfig().seed

    def test_failures_recorded(self, source, tmp_path):
        with EngineSession() as session:
            study(source, session, cache_dir=tmp_path,
                  error_policy=ErrorPolicy.skip(),
                  faults=FaultPlan.parse("parse@flatliner-01"))
        record = session.runs[0]
        assert len(record.failures) == 1
        assert "flatliner-01" in record.failures[0]
        assert record.cache_hits + record.cache_misses > 0

    def test_ledger_survives_torn_lines(self, source, tmp_path):
        with EngineSession() as session:
            study(source, session, cache_dir=tmp_path)
        ledger = tmp_path / LEDGER_NAME
        ledger.write_text(ledger.read_text(encoding="utf-8")
                          + "{not json\n", encoding="utf-8")
        # Torn lines are skipped but *reported*, never silent.
        with pytest.warns(RuntimeWarning, match="torn"):
            assert len(read_ledger(tmp_path)) == 1

    def test_no_cache_dir_keeps_memory_ledger_only(self, source):
        with EngineSession() as session:
            study(source, session)
        assert len(session.runs) == 1

    def test_throwaway_session_still_ledgers(self, source, tmp_path):
        # session=None opens a one-shot session; the JSONL persists.
        study(source, cache_dir=tmp_path)
        assert len(read_ledger(tmp_path)) == 1


class TestHandleRegistry:
    def test_enumerated_once_per_session(self, tmp_path):
        calls = []

        class CountingSource(SyntheticSource):
            def identity(self):
                return super().identity()

            def project_ids(self):
                calls.append("ids")
                return super().project_ids()

        source = CountingSource(seed=99, population=SMALL_POPULATION,
                                with_exceptions=False)
        with EngineSession() as session:
            study(source, session)
            first = calls.count("ids")
            study(source, session)
            assert calls.count("ids") == first

    def test_in_memory_source_never_memoized(self, small_corpus):
        source = InMemorySource(small_corpus.projects, mode="corpus")
        with EngineSession() as session:
            handles, _ = session.handles_for(source)
            assert session._handles == {}
            assert len(handles) == len(source)


class TestSourceSessionKey:
    def test_lightweight_sources_have_keys(self, source, small_corpus,
                                           tmp_path):
        root = export_corpus_dir(small_corpus, tmp_path / "dir")
        keys = {source_session_key(source),
                source_session_key(CorpusDirSource(root))}
        assert None not in keys
        assert len(keys) == 2

    def test_key_tracks_identity(self):
        one = SyntheticSource(seed=1, population=SMALL_POPULATION)
        two = SyntheticSource(seed=2, population=SMALL_POPULATION)
        same = SyntheticSource(seed=1, population=SMALL_POPULATION)
        assert source_session_key(one) == source_session_key(same)
        assert source_session_key(one) != source_session_key(two)

    def test_in_memory_source_has_none(self, small_corpus):
        source = InMemorySource(small_corpus.projects, mode="corpus")
        assert source_session_key(source) is None


class TestLifecycle:
    def test_closed_session_refuses_work(self):
        session = EngineSession()
        session.close()
        assert session.closed
        with pytest.raises(EngineError):
            session.pool(2)
        with pytest.raises(EngineError):
            session.cache_for("somewhere")

    def test_close_is_idempotent(self):
        session = EngineSession()
        session.close()
        session.close()

    def test_context_manager_closes(self, source):
        with EngineSession() as session:
            study(source, session)
        assert session.closed
        # The ledger stays readable after close.
        assert len(session.runs) == 1

    def test_cache_registry_one_per_dir(self, tmp_path):
        with EngineSession() as session:
            a = session.cache_for(tmp_path / "x")
            b = session.cache_for(tmp_path / "x")
            c = session.cache_for(tmp_path / "y")
            assert a is b
            assert a is not c
            assert session.cache_for(None) is None
