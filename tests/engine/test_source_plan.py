"""The handle-based source fan-out must match the legacy pipeline.

Same acceptance bar as test_golden_equivalence, one layer up: a study
driven by ``SyntheticSource`` — serial, process-parallel and warm-cache
— must render a byte-identical report to the item-based engine path,
workers must receive nothing heavier than :class:`SourceHandle`\\ s,
and a warm cache must serve the whole study without a single
``load()`` call.
"""

import pytest

from repro.engine import (
    StudyConfig,
    compute_records_from_source,
    execute_study,
    execute_study_from_source,
    source_handles,
)
from repro.report.markdown import markdown_report
from repro.sources import CorpusDirSource, SyntheticSource, \
    export_corpus_dir
from repro.sources.base import SourceHandle
from tests.conftest import SMALL_POPULATION


@pytest.fixture(scope="module")
def source():
    return SyntheticSource(seed=99, population=SMALL_POPULATION,
                           with_exceptions=False)


@pytest.fixture(scope="module")
def legacy_report(small_corpus):
    results, _ = execute_study(small_corpus.projects, StudyConfig(),
                               source="corpus")
    return markdown_report(results)


class TestGoldenEquivalence:
    def test_serial(self, source, legacy_report):
        results, report = execute_study_from_source(source,
                                                    StudyConfig())
        assert markdown_report(results) == legacy_report
        assert report.timing("records").items == len(source)

    def test_parallel_jobs4(self, source, legacy_report):
        results, _ = execute_study_from_source(source,
                                               StudyConfig(jobs=4))
        assert markdown_report(results) == legacy_report

    def test_warm_cache(self, source, legacy_report, tmp_path):
        config = StudyConfig(cache_dir=tmp_path)
        cold, cold_report = execute_study_from_source(source, config)
        warm, warm_report = execute_study_from_source(source, config)
        assert markdown_report(cold) == legacy_report
        assert markdown_report(warm) == legacy_report
        assert cold_report.timing("records").cache_misses == len(source)
        assert warm_report.timing("records").cache_hits == len(source)
        assert warm_report.cache_hits == len(source)
        assert warm_report.cache_misses == 0

    def test_corpus_dir_source_same_report(self, small_corpus,
                                           legacy_report, tmp_path):
        root = export_corpus_dir(small_corpus, tmp_path / "dir")
        results, _ = execute_study_from_source(CorpusDirSource(root),
                                               StudyConfig())
        assert markdown_report(results) == legacy_report


class TestHandlesOnlyCrossTheBoundary:
    def test_parallel_fanout_ships_handles(self, source, monkeypatch):
        """No project or history is pickled parent → worker."""
        import repro.engine.session as session_mod
        shipped = []

        class SpyPool(session_mod.ProcessPoolExecutor):
            def submit(self, fn, *args, **kwargs):
                # the executor submits _invoke_chunk(invoke, items)
                if len(args) == 2 and isinstance(args[1], list):
                    shipped.extend(args[1])
                return super().submit(fn, *args, **kwargs)

        # Pool construction lives in the engine session now.
        monkeypatch.setattr(session_mod, "ProcessPoolExecutor", SpyPool)
        compute_records_from_source(source, StudyConfig(jobs=2))
        assert len(shipped) == len(source)
        assert all(isinstance(item, SourceHandle) for item in shipped)


class TestWarmCacheNeverLoads:
    def test_second_run_skips_load(self, tmp_path):
        loads = []

        class CountingSource(SyntheticSource):
            def load(self, pid):
                loads.append(pid)
                return super().load(pid)

        source = CountingSource(seed=99, population=SMALL_POPULATION,
                                with_exceptions=False)
        config = StudyConfig(cache_dir=tmp_path / "cache")
        compute_records_from_source(source, config)
        assert len(loads) == len(source)
        loads.clear()
        compute_records_from_source(source, config)
        assert loads == []


class TestHandles:
    def test_one_handle_per_project(self, source):
        handles = source_handles(source)
        assert len(handles) == len(source)
        assert [h.pid for h in handles] == list(source.project_ids())
        assert all(h.fingerprint == source.fingerprint(h.pid)
                   for h in handles)


class TestEmptySource:
    def test_zero_projects_raise(self, tmp_path):
        from repro.errors import AnalysisError
        from repro.corpus.generator import Corpus
        root = export_corpus_dir(Corpus(projects=(), seed=1),
                                 tmp_path / "empty")
        with pytest.raises(AnalysisError):
            execute_study_from_source(CorpusDirSource(root))


class TestShardedGoldenEquivalence:
    """The v2 sharded layout, cold and session-warm, must render the
    same bytes as the legacy in-memory path."""

    def test_cold_and_warm_are_byte_identical(self, small_corpus,
                                              legacy_report, tmp_path):
        from repro.engine import EngineSession
        root = export_corpus_dir(small_corpus, tmp_path / "v2",
                                 shard_size=4)
        config = StudyConfig(cache_dir=tmp_path / "cache")
        with EngineSession(config) as session:
            cold, cold_report = execute_study_from_source(
                CorpusDirSource(root), config, session=session)
            warm, warm_report = execute_study_from_source(
                CorpusDirSource(root), config, session=session)
        assert markdown_report(cold) == legacy_report
        assert markdown_report(warm) == legacy_report
        assert cold_report.cache_misses == len(small_corpus)
        assert warm_report.cache_hits == len(small_corpus)

    def test_parallel_sharded_matches(self, small_corpus,
                                      legacy_report, tmp_path):
        root = export_corpus_dir(small_corpus, tmp_path / "v2p",
                                 shard_size=4)
        results, _ = execute_study_from_source(CorpusDirSource(root),
                                               StudyConfig(jobs=2))
        assert markdown_report(results) == legacy_report
