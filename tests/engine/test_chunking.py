"""Chunk-sizing unit tests: _auto_chunk/_count_hint edges and overrides.

The precedence contract is ``config.chunk_size`` (the CLI ``--chunk-size``
flag) over ``MapStage.chunk_size`` (a per-stage default) over
:func:`_auto_chunk` on the feed's :func:`_count_hint`; whatever wins is
surfaced in the ``chunk`` column of the timing report.
"""

import pytest

from repro.engine import (
    MapStage,
    StudyConfig,
    StudyPlan,
    execute_plan,
)
from repro.engine.executor import _auto_chunk, _count_hint
from repro.errors import EngineError


def _double(x):
    return x * 2


class TestAutoChunk:
    def test_zero_total(self):
        assert _auto_chunk(0, 4) == 1

    def test_unsized_stream(self):
        assert _auto_chunk(None, 1) == 4
        assert _auto_chunk(None, 4) == 16

    def test_more_jobs_than_items(self):
        assert _auto_chunk(3, 8) == 1

    def test_amortizes_known_totals(self):
        # ~4 chunks per worker
        assert _auto_chunk(160, 4) == 10
        assert _auto_chunk(161, 4) == 11

    def test_never_below_one(self):
        assert _auto_chunk(1, 64) == 1


class _Counted:
    """An unsized iterable advertising a cheap ``count()`` hint."""

    def __init__(self, n, broken=False):
        self.n = n
        self.broken = broken

    def __iter__(self):
        return iter(range(self.n))

    def count(self):
        if self.broken:
            raise RuntimeError("no count today")
        return self.n


class TestCountHint:
    def test_sized(self):
        assert _count_hint([1, 2, 3]) == 3

    def test_count_method(self):
        assert _count_hint(_Counted(7)) == 7

    def test_failing_count_is_unsized(self):
        assert _count_hint(_Counted(7, broken=True)) is None

    def test_plain_generator_is_unsized(self):
        assert _count_hint(x for x in range(5)) is None


class TestChunkOverride:
    def _run(self, config, stage_chunk=None):
        plan = StudyPlan([MapStage(name="m", fn=_double,
                                   inputs=("items",),
                                   chunk_size=stage_chunk)])
        results, report = execute_plan(plan, {"items": list(range(20))},
                                       config)
        assert results["m"] == [x * 2 for x in range(20)]
        return report.timing("m").chunk_size

    def test_stage_default_wins_over_auto(self):
        assert self._run(StudyConfig(jobs=2), stage_chunk=5) == 5

    def test_config_wins_over_stage(self):
        assert self._run(StudyConfig(jobs=2, chunk_size=3),
                         stage_chunk=5) == 3

    def test_auto_when_nothing_set(self):
        # 20 items / (2 jobs * 4) -> ceil = 3
        assert self._run(StudyConfig(jobs=2)) == 3

    def test_serial_runs_ignore_chunking(self):
        assert self._run(StudyConfig(jobs=1), stage_chunk=5) == 0

    def test_invalid_stage_chunk_rejected(self):
        with pytest.raises(EngineError, match="chunk_size"):
            MapStage(name="m", fn=_double, inputs=("items",),
                     chunk_size=0)
