"""Unit tests for the content-addressed result cache and its keys."""

import dataclasses
from datetime import datetime

import pytest

from repro.corpus.generator import generate_corpus
from repro.engine import (
    MISS,
    RECORDS_STAGE_VERSION,
    ResultCache,
    canonical,
    corpus_record_key,
    fingerprint,
    history_record_key,
)
from repro.engine.cache import (
    ENVELOPE_MAGIC,
    ENVELOPE_VERSION,
    decode_entry,
    encode_entry,
)
from repro.errors import EngineError
from repro.history.commit import Commit
from repro.history.repository import SchemaHistory
from repro.labels.quantization import DEFAULT_SCHEME, LabelScheme
from repro.patterns.taxonomy import Pattern

POPULATION = {Pattern.FLATLINER: 1, Pattern.SIESTA: 1}


@pytest.fixture(scope="module")
def project():
    return generate_corpus(seed=11, population=POPULATION,
                           with_exceptions=False).projects[0]


class TestFingerprint:
    def test_stable_across_calls(self):
        assert fingerprint("a", 1, [2.5, None]) \
            == fingerprint("a", 1, [2.5, None])

    def test_order_sensitive(self):
        assert fingerprint("a", "b") != fingerprint("b", "a")

    def test_dict_key_order_irrelevant(self):
        assert fingerprint({"x": 1, "y": 2}) \
            == fingerprint({"y": 2, "x": 1})

    def test_type_distinction(self):
        assert fingerprint("1") != fingerprint(1)

    def test_datetime_and_enum_supported(self):
        key = fingerprint(datetime(2020, 1, 1), Pattern.FLATLINER)
        assert key == fingerprint(datetime(2020, 1, 1),
                                  Pattern.FLATLINER)

    def test_unhashable_type_rejected(self):
        with pytest.raises(EngineError):
            canonical(object())

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(EngineError):
            canonical({1: "x"})


class TestRecordCacheKey:
    def test_stable_across_regeneration(self):
        """The same seed yields the same keys in a fresh process/run."""
        a = generate_corpus(seed=11, population=POPULATION,
                            with_exceptions=False)
        b = generate_corpus(seed=11, population=POPULATION,
                            with_exceptions=False)
        keys_a = [corpus_record_key(p, (DEFAULT_SCHEME,),
                                    RECORDS_STAGE_VERSION)
                  for p in a.projects]
        keys_b = [corpus_record_key(p, (DEFAULT_SCHEME,),
                                    RECORDS_STAGE_VERSION)
                  for p in b.projects]
        assert keys_a == keys_b

    def test_ddl_text_change_invalidates(self, project):
        old = project.history
        commits = list(old.commits)
        commits[0] = Commit(sha=commits[0].sha,
                            timestamp=commits[0].timestamp,
                            ddl_text=commits[0].ddl_text
                            + "\nCREATE TABLE sneaky (id INT);")
        touched = SchemaHistory(old.project_name, commits,
                                project_start=old.project_start,
                                project_end=old.project_end,
                                dialect=old.dialect)
        modified = dataclasses.replace(project, history=touched)
        assert corpus_record_key(project, (DEFAULT_SCHEME,),
                                 RECORDS_STAGE_VERSION) \
            != corpus_record_key(modified, (DEFAULT_SCHEME,),
                                 RECORDS_STAGE_VERSION)

    def test_scheme_boundary_change_invalidates(self, project):
        shifted = LabelScheme(timing_bounds=(0.30, 0.75))
        assert corpus_record_key(project, (DEFAULT_SCHEME,),
                                 RECORDS_STAGE_VERSION) \
            != corpus_record_key(project, (shifted,),
                                 RECORDS_STAGE_VERSION)

    def test_stage_version_bump_invalidates(self, project):
        assert corpus_record_key(project, (DEFAULT_SCHEME,), "1") \
            != corpus_record_key(project, (DEFAULT_SCHEME,), "2")

    def test_history_key_tracks_window(self, project):
        history = project.history
        widened = SchemaHistory(
            history.project_name, list(history.commits),
            project_start=history.project_start,
            project_end=history.project_end.replace(
                year=history.project_end.year + 1),
            dialect=history.dialect)
        assert history_record_key(history, (DEFAULT_SCHEME,), "1") \
            != history_record_key(widened, (DEFAULT_SCHEME,), "1")


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = fingerprint("roundtrip")
        assert cache.get(key) is MISS
        assert cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}
        assert key in cache
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = fingerprint("corrupt")
        cache.put(key, [1, 2, 3])
        cache._path(key).write_bytes(b"not a pickle")
        assert cache.get(key) is MISS

    def test_unwritable_root_degrades_gracefully(self, tmp_path):
        # A *file* where the cache dir should be: every mkdir fails.
        blocker = tmp_path / "blocked"
        blocker.write_text("in the way")
        cache = ResultCache(blocker)
        assert cache.put(fingerprint("x"), 1) is None
        assert cache.get(fingerprint("x")) is MISS
        assert len(cache) == 0
        assert cache.write_failures == 1
        assert cache.degraded_writes


class TestEnvelope:
    def test_roundtrip(self):
        value = {"records": [1, 2, 3], "when": datetime(2024, 1, 1)}
        assert decode_entry(encode_entry(value)) == value

    def test_header_names_version_and_checksum(self):
        header = encode_entry("x").split(b"\n", 1)[0]
        magic, version, digest = header.split(b" ")
        assert magic == ENVELOPE_MAGIC
        assert int(version) == ENVELOPE_VERSION
        assert len(digest) == 64  # sha256 hex

    @pytest.mark.parametrize("data", [
        b"",
        b"\x00garbage\x00",
        b"%repro-cache%",                      # no header newline
        b"%repro-cache% 1\npayload",           # too few header fields
        b"%repro-cache% x y\npayload",         # non-numeric version
    ])
    def test_garbled_envelopes_rejected(self, data):
        with pytest.raises(EngineError):
            decode_entry(data)

    def test_wrong_version_rejected(self):
        entry = encode_entry(42)
        header, payload = entry.split(b"\n", 1)
        fields = header.split(b" ")
        bumped = b" ".join([fields[0], b"99", fields[2]])
        with pytest.raises(EngineError):
            decode_entry(bumped + b"\n" + payload)

    def test_checksum_mismatch_rejected(self):
        entry = bytearray(encode_entry([1, 2, 3]))
        entry[-1] ^= 0xFF  # flip one payload byte
        with pytest.raises(EngineError):
            decode_entry(bytes(entry))

    def test_unpicklable_payload_rejected(self):
        # Valid checksum over bytes that are not a pickle at all.
        import hashlib
        payload = b"this is not a pickle"
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        entry = ENVELOPE_MAGIC + b" 1 " + digest + b"\n" + payload
        with pytest.raises(EngineError):
            decode_entry(entry)


class TestCacheSelfHealing:
    """Every corruption class yields miss + quarantine, never a crash."""

    def corrupted(self, tmp_path, mangle):
        cache = ResultCache(tmp_path)
        key = fingerprint("self-healing")
        cache.put(key, {"payload": list(range(10))})
        path = cache._path(key)
        mangle(path)
        return cache, key, path

    @pytest.mark.parametrize("mangle", [
        lambda p: p.write_bytes(b""),                       # zero-byte
        lambda p: p.write_bytes(p.read_bytes()[:-7]),       # truncated
        lambda p: p.write_bytes(
            p.read_bytes()[:-1] + b"\xff"),                 # bad checksum
        lambda p: p.write_bytes(
            p.read_bytes().replace(b"% 1 ", b"% 9 ", 1)),   # wrong version
        lambda p: p.write_bytes(b"\x00scribble\x00"),       # no envelope
    ], ids=["zero-byte", "truncated", "bad-checksum",
            "wrong-version", "scribbled"])
    def test_corruption_is_miss_plus_quarantine(self, tmp_path, mangle):
        cache, key, path = self.corrupted(tmp_path, mangle)
        assert cache.get(key) is MISS
        assert cache.quarantined == 1
        assert not path.exists()
        assert (cache.corrupt_dir / path.name).exists()

    def test_repopulation_after_quarantine(self, tmp_path):
        cache, key, _ = self.corrupted(
            tmp_path, lambda p: p.write_bytes(b""))
        assert cache.get(key) is MISS
        # The warm re-run recomputes and rewrites the slot.
        assert cache.put(key, "recomputed")
        assert cache.get(key) == "recomputed"
        assert cache.quarantined == 1

    def test_corrupt_entry_helper(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = fingerprint("inject")
        assert cache.corrupt_entry(key) is False  # nothing stored yet
        cache.put(key, 7)
        assert cache.corrupt_entry(key) is True
        assert cache.get(key) is MISS
        assert cache.quarantined == 1


class TestQuarantineCap:
    """The corrupt/ directory is bounded: oldest entries are pruned."""

    def test_prune_oldest_caps_directory(self, tmp_path):
        import os
        from repro.engine.cache import prune_oldest
        for index in range(6):
            path = tmp_path / f"f{index}.bin"
            path.write_bytes(b"x")
            os.utime(path, (1_000_000 + index, 1_000_000 + index))
        assert prune_oldest(tmp_path, 4) == 2
        assert sorted(p.name for p in tmp_path.iterdir()) \
            == ["f2.bin", "f3.bin", "f4.bin", "f5.bin"]
        assert prune_oldest(tmp_path, 4) == 0

    def test_prune_missing_directory_is_zero(self, tmp_path):
        from repro.engine.cache import prune_oldest
        assert prune_oldest(tmp_path / "nowhere", 4) == 0

    def test_quarantine_respects_cap(self, tmp_path):
        import os
        cache = ResultCache(tmp_path, quarantine_limit=2)
        for index in range(4):
            key = fingerprint("capped", index)
            cache.put(key, index)
            path = cache._path(key)
            path.write_bytes(b"scribbled")
            stamp = 1_000_000 + index
            os.utime(path, (stamp, stamp))
            assert cache.get(key) is MISS
        assert cache.quarantined == 4
        assert cache.pruned == 2
        assert len(list(cache.corrupt_dir.iterdir())) == 2
