"""Unit tests for the content-addressed result cache and its keys."""

import dataclasses
from datetime import datetime

import pytest

from repro.corpus.generator import generate_corpus
from repro.engine import (
    MISS,
    RECORDS_STAGE_VERSION,
    ResultCache,
    canonical,
    corpus_record_key,
    fingerprint,
    history_record_key,
)
from repro.errors import EngineError
from repro.history.commit import Commit
from repro.history.repository import SchemaHistory
from repro.labels.quantization import DEFAULT_SCHEME, LabelScheme
from repro.patterns.taxonomy import Pattern

POPULATION = {Pattern.FLATLINER: 1, Pattern.SIESTA: 1}


@pytest.fixture(scope="module")
def project():
    return generate_corpus(seed=11, population=POPULATION,
                           with_exceptions=False).projects[0]


class TestFingerprint:
    def test_stable_across_calls(self):
        assert fingerprint("a", 1, [2.5, None]) \
            == fingerprint("a", 1, [2.5, None])

    def test_order_sensitive(self):
        assert fingerprint("a", "b") != fingerprint("b", "a")

    def test_dict_key_order_irrelevant(self):
        assert fingerprint({"x": 1, "y": 2}) \
            == fingerprint({"y": 2, "x": 1})

    def test_type_distinction(self):
        assert fingerprint("1") != fingerprint(1)

    def test_datetime_and_enum_supported(self):
        key = fingerprint(datetime(2020, 1, 1), Pattern.FLATLINER)
        assert key == fingerprint(datetime(2020, 1, 1),
                                  Pattern.FLATLINER)

    def test_unhashable_type_rejected(self):
        with pytest.raises(EngineError):
            canonical(object())

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(EngineError):
            canonical({1: "x"})


class TestRecordCacheKey:
    def test_stable_across_regeneration(self):
        """The same seed yields the same keys in a fresh process/run."""
        a = generate_corpus(seed=11, population=POPULATION,
                            with_exceptions=False)
        b = generate_corpus(seed=11, population=POPULATION,
                            with_exceptions=False)
        keys_a = [corpus_record_key(p, (DEFAULT_SCHEME,),
                                    RECORDS_STAGE_VERSION)
                  for p in a.projects]
        keys_b = [corpus_record_key(p, (DEFAULT_SCHEME,),
                                    RECORDS_STAGE_VERSION)
                  for p in b.projects]
        assert keys_a == keys_b

    def test_ddl_text_change_invalidates(self, project):
        old = project.history
        commits = list(old.commits)
        commits[0] = Commit(sha=commits[0].sha,
                            timestamp=commits[0].timestamp,
                            ddl_text=commits[0].ddl_text
                            + "\nCREATE TABLE sneaky (id INT);")
        touched = SchemaHistory(old.project_name, commits,
                                project_start=old.project_start,
                                project_end=old.project_end,
                                dialect=old.dialect)
        modified = dataclasses.replace(project, history=touched)
        assert corpus_record_key(project, (DEFAULT_SCHEME,),
                                 RECORDS_STAGE_VERSION) \
            != corpus_record_key(modified, (DEFAULT_SCHEME,),
                                 RECORDS_STAGE_VERSION)

    def test_scheme_boundary_change_invalidates(self, project):
        shifted = LabelScheme(timing_bounds=(0.30, 0.75))
        assert corpus_record_key(project, (DEFAULT_SCHEME,),
                                 RECORDS_STAGE_VERSION) \
            != corpus_record_key(project, (shifted,),
                                 RECORDS_STAGE_VERSION)

    def test_stage_version_bump_invalidates(self, project):
        assert corpus_record_key(project, (DEFAULT_SCHEME,), "1") \
            != corpus_record_key(project, (DEFAULT_SCHEME,), "2")

    def test_history_key_tracks_window(self, project):
        history = project.history
        widened = SchemaHistory(
            history.project_name, list(history.commits),
            project_start=history.project_start,
            project_end=history.project_end.replace(
                year=history.project_end.year + 1),
            dialect=history.dialect)
        assert history_record_key(history, (DEFAULT_SCHEME,), "1") \
            != history_record_key(widened, (DEFAULT_SCHEME,), "1")


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = fingerprint("roundtrip")
        assert cache.get(key) is MISS
        assert cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}
        assert key in cache
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = fingerprint("corrupt")
        cache.put(key, [1, 2, 3])
        cache._path(key).write_bytes(b"not a pickle")
        assert cache.get(key) is MISS

    def test_unwritable_root_degrades_gracefully(self, tmp_path):
        # A *file* where the cache dir should be: every mkdir fails.
        blocker = tmp_path / "blocked"
        blocker.write_text("in the way")
        cache = ResultCache(blocker)
        assert cache.put(fingerprint("x"), 1) is False
        assert cache.get(fingerprint("x")) is MISS
        assert len(cache) == 0
