"""Golden equivalence: the engine must reproduce the legacy pipeline.

The pre-engine driver measured, labeled and classified projects in one
eager in-process loop. These tests pin that behavior: the engine-run
study — serial, process-parallel and warm-cache — must produce results
identical to the straight-line legacy computation on a seeded corpus.
"""

import pytest

from repro.analysis.records import StudyRecord
from repro.engine import StudyConfig, execute_study
from repro.labels.quantization import DEFAULT_SCHEME, label_profile
from repro.metrics.profile import ProjectProfile
from repro.patterns.classifier import classify
from repro.report.markdown import markdown_report
from repro.study.pipeline import (
    records_from_corpus,
    run_full_study,
    run_study,
)


def _legacy_records(corpus, scheme=DEFAULT_SCHEME):
    """The pre-engine per-project loop, verbatim."""
    records = []
    for project in corpus.projects:
        profile = ProjectProfile.from_history(project.history,
                                              source=project.source)
        labeled = label_profile(profile, scheme)
        strict = classify(labeled)
        records.append(StudyRecord(
            name=project.name,
            pattern=project.intended_pattern,
            labeled=labeled,
            is_exception=strict is not project.intended_pattern,
        ))
    return records


@pytest.fixture(scope="module")
def golden(small_corpus):
    records = _legacy_records(small_corpus)
    return records, run_study(records)


def _assert_same_study(results, reference):
    assert results.records == reference.records
    assert results.correlations == reference.correlations
    assert results.tree_misclassified == reference.tree_misclassified
    assert results.strict_agreement == reference.strict_agreement
    # The rendered report covers every remaining artifact (tables,
    # tree, coverage, prediction, …) — byte-identical or bust.
    assert markdown_report(results) == markdown_report(reference)


class TestEngineMatchesLegacy:
    def test_serial(self, small_corpus, golden):
        legacy_records, legacy_results = golden
        records = records_from_corpus(small_corpus)
        assert records == legacy_records
        results, report = run_full_study(small_corpus, StudyConfig())
        _assert_same_study(results, legacy_results)
        assert report.timing("records").items == len(small_corpus)

    def test_parallel_jobs4(self, small_corpus, golden):
        legacy_records, legacy_results = golden
        config = StudyConfig(jobs=4)
        records = records_from_corpus(small_corpus, config=config)
        assert records == legacy_records
        results, _ = run_full_study(small_corpus, config)
        _assert_same_study(results, legacy_results)

    def test_warm_cache(self, small_corpus, golden, tmp_path):
        _, legacy_results = golden
        config = StudyConfig(cache_dir=tmp_path)
        cold, cold_report = run_full_study(small_corpus, config)
        warm, warm_report = run_full_study(small_corpus, config)
        _assert_same_study(cold, legacy_results)
        _assert_same_study(warm, legacy_results)
        assert cold_report.timing("records").cache_misses \
            == len(small_corpus)
        assert warm_report.timing("records").cache_hits \
            == len(small_corpus)
        assert warm_report.timing("records").cache_misses == 0

    def test_parallel_then_cache_interoperate(self, small_corpus,
                                              golden, tmp_path):
        """A cache primed by a parallel run serves a serial run."""
        _, legacy_results = golden
        parallel = StudyConfig(jobs=2, cache_dir=tmp_path)
        run_full_study(small_corpus, parallel)
        serial = StudyConfig(cache_dir=tmp_path)
        results, report = run_full_study(small_corpus, serial)
        _assert_same_study(results, legacy_results)
        assert report.timing("records").cache_hits == len(small_corpus)


class TestEngineOnHistories:
    def test_blind_map_matches_legacy(self, small_corpus):
        from repro.study.pipeline import records_from_histories
        histories = [p.history for p in small_corpus]
        serial = records_from_histories(histories)
        parallel = records_from_histories(
            histories, config=StudyConfig(jobs=2))
        assert parallel == serial
        results, _ = execute_study(histories, source="histories")
        assert tuple(serial) == results.records


class TestEmptyInput:
    def test_empty_projects_raise(self):
        from repro.errors import AnalysisError
        with pytest.raises(AnalysisError):
            execute_study([], StudyConfig())
