"""CLI coverage for --source and the corpus export/import commands."""

import json

import pytest

from repro.cli import main
from repro.corpus.dataset import save_corpus


@pytest.fixture
def corpus_json(tmp_path, small_corpus):
    path = tmp_path / "corpus.json"
    save_corpus(small_corpus, path)
    return path


class TestCorpusExportImport:
    def test_round_trip(self, tmp_path, corpus_json, capsys):
        cdir = tmp_path / "cdir"
        assert main(["corpus", "export", str(cdir),
                     "--corpus", str(corpus_json)]) == 0
        assert "wrote 16 projects" in capsys.readouterr().out
        manifest = json.loads((cdir / "manifest.json").read_text())
        assert manifest["format"] == "repro-corpus-dir"

        back = tmp_path / "back.json"
        assert main(["corpus", "import", str(cdir), str(back)]) == 0
        assert json.loads(back.read_text()) \
            == json.loads(corpus_json.read_text())

    def test_limited_export(self, tmp_path, corpus_json, capsys):
        cdir = tmp_path / "five"
        assert main(["corpus", "export", str(cdir), "--limit", "5",
                     "--corpus", str(corpus_json)]) == 0
        assert "wrote 5 projects" in capsys.readouterr().out
        manifest = json.loads((cdir / "manifest.json").read_text())
        assert len(manifest["projects"]) == 5


class TestStudySources:
    def test_dir_source_matches_saved_corpus(self, tmp_path,
                                             corpus_json, capsys):
        assert main(["study", "--corpus", str(corpus_json)]) == 0
        reference = capsys.readouterr().out
        cdir = tmp_path / "cdir"
        main(["corpus", "export", str(cdir),
              "--corpus", str(corpus_json)])
        capsys.readouterr()
        assert main(["study", "--source", f"dir:{cdir}"]) == 0
        assert capsys.readouterr().out == reference

    def test_timings_report_cache_counts(self, tmp_path, corpus_json,
                                         capsys):
        cdir = tmp_path / "cdir"
        main(["corpus", "export", str(cdir),
              "--corpus", str(corpus_json)])
        cache = tmp_path / "cache"
        for expected in ("16 miss", "16 hit"):
            capsys.readouterr()
            assert main(["study", "--source", f"dir:{cdir}",
                         "--cache-dir", str(cache), "--timings"]) == 0
            err = capsys.readouterr().err
            assert "TOTAL" in err
            assert expected in err

    def test_unknown_source_kind_fails_cleanly(self, capsys):
        assert main(["study", "--source", "csv:whatever"]) == 1
        assert "unknown source kind" in capsys.readouterr().err

    def test_missing_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["study",
                     "--source", f"dir:{tmp_path / 'nope'}"]) == 1
        assert "error:" in capsys.readouterr().err


class TestReportAndExportSources:
    def test_report_from_dir_source(self, tmp_path, corpus_json,
                                    capsys):
        cdir = tmp_path / "cdir"
        main(["corpus", "export", str(cdir),
              "--corpus", str(corpus_json)])
        out = tmp_path / "report.md"
        assert main(["report", str(out),
                     "--source", f"dir:{cdir}"]) == 0
        assert out.read_text().startswith("#")

    def test_export_from_dir_source(self, tmp_path, corpus_json,
                                    capsys):
        cdir = tmp_path / "cdir"
        main(["corpus", "export", str(cdir),
              "--corpus", str(corpus_json)])
        out = tmp_path / "csv"
        assert main(["export", str(out),
                     "--source", f"dir:{cdir}"]) == 0
        assert any(out.iterdir())


class TestSingleErrorPath:
    def test_classify_empty_directory(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert main(["classify", str(tmp_path / "empty")]) == 1
        assert "error: no histories found" in capsys.readouterr().err


class TestProcessSession:
    def test_two_invocations_share_one_session(self, tmp_path,
                                               corpus_json, capsys):
        """Back-to-back CLI studies reuse the process engine session."""
        import repro.cli as cli
        from repro.engine import read_ledger

        cli._SESSION = None  # isolate from earlier in-process runs
        cdir = tmp_path / "cdir"
        main(["corpus", "export", str(cdir),
              "--corpus", str(corpus_json)])
        cache = tmp_path / "cache"
        for _ in range(2):
            assert main(["study", "--source", f"dir:{cdir}",
                         "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        session = cli._SESSION
        assert session is not None
        assert len(session.runs) == 2
        assert session.runs[1].cache_hit_rate == 1.0
        assert session.runs[0].result_digest == \
            session.runs[1].result_digest
        ledger = read_ledger(cache)
        assert len(ledger) == 2
        assert ledger[1]["cache_hit_rate"] == 1.0


class TestShardedExportCli:
    def test_shard_size_export_runs_identical_study(self, tmp_path,
                                                    corpus_json,
                                                    capsys):
        assert main(["study", "--corpus", str(corpus_json)]) == 0
        reference = capsys.readouterr().out
        cdir = tmp_path / "sharded"
        assert main(["corpus", "export", str(cdir),
                     "--shard-size", "4",
                     "--corpus", str(corpus_json)]) == 0
        out = capsys.readouterr().out
        assert "wrote 16 projects" in out
        assert "4 shards" in out
        manifest = json.loads((cdir / "manifest.json").read_text())
        assert manifest["version"] == 2
        assert main(["study", "--source", f"dir:{cdir}"]) == 0
        assert capsys.readouterr().out == reference

    def test_limited_sharded_export(self, tmp_path, corpus_json,
                                    capsys):
        cdir = tmp_path / "limited"
        assert main(["corpus", "export", str(cdir), "--limit", "5",
                     "--shard-size", "2",
                     "--corpus", str(corpus_json)]) == 0
        out = capsys.readouterr().out
        assert "wrote 5 projects" in out
        assert "3 shards" in out


class TestSampledStudyCli:
    def test_stratified_sample_completes(self, tmp_path, corpus_json,
                                         capsys):
        cdir = tmp_path / "cdir"
        main(["corpus", "export", str(cdir),
              "--corpus", str(corpus_json)])
        capsys.readouterr()
        assert main(["study", "--source", f"dir:{cdir}",
                     "--sample", "8", "--stratified"]) == 0
        assert "Sec. 6.3" in capsys.readouterr().out

    def test_sample_is_deterministic(self, tmp_path, corpus_json,
                                     capsys):
        cdir = tmp_path / "cdir"
        main(["corpus", "export", str(cdir),
              "--corpus", str(corpus_json)])
        capsys.readouterr()
        assert main(["study", "--source", f"dir:{cdir}",
                     "--sample", "6"]) == 0
        first = capsys.readouterr().out
        assert main(["study", "--source", f"dir:{cdir}",
                     "--sample", "6"]) == 0
        assert capsys.readouterr().out == first
