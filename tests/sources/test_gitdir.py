"""GitDirSource against a real repository built commit-by-commit."""

import shutil
import subprocess
from datetime import datetime

import pytest

from repro.errors import SourceError
from repro.sources import GitDirSource

pytestmark = pytest.mark.skipif(shutil.which("git") is None,
                                reason="git binary not available")


def _git(root, *args, env_date=None):
    import os
    env = dict(os.environ,
               GIT_AUTHOR_NAME="t", GIT_AUTHOR_EMAIL="t@t",
               GIT_COMMITTER_NAME="t", GIT_COMMITTER_EMAIL="t@t",
               HOME=str(root))
    if env_date:
        env["GIT_AUTHOR_DATE"] = env_date
        env["GIT_COMMITTER_DATE"] = env_date
    subprocess.run(["git", "-C", str(root), *args], check=True,
                   capture_output=True, env=env)


@pytest.fixture
def repo(tmp_path):
    """Two DDL files, one query file, one noise-path file, 3 commits."""
    root = tmp_path / "repo"
    root.mkdir()
    _git(root, "init", "-q", ".")
    (root / "schema.sql").write_text(
        "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT);\n")
    (root / "query.sql").write_text("SELECT 1;\n")
    (root / "examples").mkdir()
    (root / "examples" / "demo.sql").write_text(
        "CREATE TABLE demo (x INT);\n")
    _git(root, "add", "-A")
    _git(root, "commit", "-qm", "one",
         env_date="2020-01-15T10:00:00+02:00")
    (root / "schema.sql").write_text(
        "CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT, "
        "email TEXT);\n")
    _git(root, "commit", "-qam", "two",
         env_date="2020-06-20T10:00:00Z")
    (root / "audit.sql").write_text(
        "CREATE TABLE audit (at TIMESTAMP);\n")
    _git(root, "add", "-A")
    _git(root, "commit", "-qm", "three",
         env_date="2021-01-10T00:00:00Z")
    return root


class TestDiscovery:
    def test_keeps_only_committed_ddl_files(self, repo):
        source = GitDirSource(repo)
        assert source.mode == "histories"
        # query.sql has no DDL; examples/demo.sql is a noise path.
        assert source.project_ids() == ("audit.sql", "schema.sql")

    def test_noise_filter_can_be_disabled(self, repo):
        source = GitDirSource(repo, drop_noise=False)
        assert "examples/demo.sql" in source.project_ids()

    def test_not_a_repository(self, tmp_path):
        with pytest.raises(SourceError, match="git"):
            GitDirSource(tmp_path / "nowhere").project_ids()


class TestLoad:
    def test_history_per_commit(self, repo):
        history = GitDirSource(repo).load("schema.sql")
        assert history.project_name == "schema"
        assert len(history.commits) == 2
        assert "email" not in history.commits[0].ddl_text
        assert "email" in history.commits[1].ddl_text

    def test_timestamps_are_naive_utc(self, repo):
        history = GitDirSource(repo).load("schema.sql")
        first = history.commits[0].timestamp
        assert first.tzinfo is None
        assert first == datetime(2020, 1, 15, 8, 0)  # +02:00 shifted

    def test_unknown_file(self, repo):
        with pytest.raises(SourceError, match="no committed versions"):
            GitDirSource(repo).load("missing.sql")


class TestFingerprints:
    def test_changes_with_new_commit(self, repo):
        source = GitDirSource(repo)
        before = source.fingerprint("schema.sql")
        untouched = source.fingerprint("audit.sql")
        (repo / "schema.sql").write_text(
            "CREATE TABLE users (id INTEGER PRIMARY KEY);\n")
        _git(repo, "commit", "-qam", "four",
             env_date="2021-06-01T00:00:00Z")
        fresh = GitDirSource(repo)
        assert fresh.fingerprint("schema.sql") != before
        assert fresh.fingerprint("audit.sql") == untouched


class TestStudyIntegration:
    def test_records_from_git_source(self, repo):
        from repro.engine import compute_records_from_source
        records, _ = compute_records_from_source(GitDirSource(repo))
        assert [r.name for r in records] == ["audit", "schema"]


class TestTipMemo:
    """HEAD changes invalidate the cached discovery/fingerprint memos
    of one live source instance — the cheap ``rev-parse HEAD`` probe
    replaces a full history walk when nothing moved."""

    def test_same_instance_sees_new_commits(self, repo):
        source = GitDirSource(repo)
        assert "extra.sql" not in source.project_ids()
        before = source.fingerprint("schema.sql")
        (repo / "extra.sql").write_text(
            "CREATE TABLE extra (id INT);\n")
        _git(repo, "add", "-A")
        _git(repo, "commit", "-qm", "extra",
             env_date="2021-06-01T00:00:00Z")
        assert "extra.sql" in source.project_ids()
        # Untouched project's fingerprint survives the tip change.
        assert source.fingerprint("schema.sql") == before

    def test_fingerprint_memoized_until_tip_moves(self, repo):
        source = GitDirSource(repo)
        tip = source.tip()
        assert source.fingerprint("schema.sql") \
            == source.fingerprint("schema.sql")
        (repo / "schema.sql").write_text("CREATE TABLE users (x INT);\n")
        _git(repo, "commit", "-qam", "more",
             env_date="2021-07-01T00:00:00Z")
        assert source.tip() != tip
        assert "x INT" in source.load("schema.sql").commits[-1].ddl_text

    def test_identity_tracks_head(self, repo):
        source = GitDirSource(repo)
        before = source.identity()
        (repo / "schema.sql").write_text("CREATE TABLE users (y INT);\n")
        _git(repo, "commit", "-qam", "again",
             env_date="2021-08-01T00:00:00Z")
        assert source.identity() != before
