"""The sharded v2 corpus-directory layout: round-trip, integrity,
golden equivalence with v1, and the streaming write surface."""

import json

import pytest

from repro.corpus.dataset import project_to_dict
from repro.errors import SourceError
from repro.report.markdown import markdown_report
from repro.sources import (
    CorpusDirSource,
    export_corpus_dir,
    import_corpus_dir,
    write_corpus_dir,
)
from repro.sources.corpusdir import CORPUS_DIR_VERSION_SHARDED
from repro.study.pipeline import records_from_corpus, run_study


@pytest.fixture(scope="module")
def sharded_dir(small_corpus, tmp_path_factory):
    root = tmp_path_factory.mktemp("corpus_v2") / "dir"
    return export_corpus_dir(small_corpus, root, shard_size=4)


class TestShardedLayout:
    def test_manifest_schema(self, small_corpus, sharded_dir):
        manifest = json.loads(
            (sharded_dir / "manifest.json").read_text())
        assert manifest["version"] == CORPUS_DIR_VERSION_SHARDED
        assert manifest["shard_size"] == 4
        assert manifest["count"] == len(small_corpus)
        assert sum(s["count"] for s in manifest["shards"]) \
            == len(small_corpus)
        for shard in manifest["shards"]:
            assert (sharded_dir / shard["file"]).exists()
            assert len(shard["projects"]) == shard["count"] <= 4

    def test_no_per_project_files(self, sharded_dir):
        assert not (sharded_dir / "projects").exists()

    def test_write_is_deterministic(self, small_corpus, sharded_dir,
                                    tmp_path):
        again = export_corpus_dir(small_corpus, tmp_path / "again",
                                  shard_size=4)
        assert (again / "manifest.json").read_text() \
            == (sharded_dir / "manifest.json").read_text()

    def test_streaming_write_reports_counts(self, small_corpus,
                                            tmp_path):
        report = write_corpus_dir(iter(small_corpus.projects),
                                  tmp_path / "stream",
                                  seed=small_corpus.seed,
                                  shard_size=7)
        assert report.projects == len(small_corpus)
        assert report.shards == -(-len(small_corpus) // 7)

    def test_bad_shard_size(self, small_corpus, tmp_path):
        with pytest.raises(SourceError, match="shard_size"):
            write_corpus_dir(small_corpus.projects, tmp_path / "x",
                             shard_size=0)


class TestRoundTrip:
    def test_projects_survive(self, small_corpus, sharded_dir):
        # GeneratedProject has identity equality — compare the
        # serialized dicts, never the objects.
        back = import_corpus_dir(sharded_dir)
        assert back.seed == small_corpus.seed
        for original, restored in zip(small_corpus.projects,
                                      back.projects):
            assert project_to_dict(restored) \
                == project_to_dict(original)

    def test_v1_and_v2_hold_identical_projects(self, small_corpus,
                                               sharded_dir, tmp_path):
        v1 = export_corpus_dir(small_corpus, tmp_path / "v1")
        flat = import_corpus_dir(v1)
        sharded = import_corpus_dir(sharded_dir)
        assert [project_to_dict(p) for p in flat.projects] \
            == [project_to_dict(p) for p in sharded.projects]

    def test_study_report_identical_to_v1(self, small_corpus,
                                          sharded_dir):
        """The acceptance bar: sharded in, byte-identical study out."""
        reference = markdown_report(
            run_study(records_from_corpus(small_corpus)))
        sharded = markdown_report(run_study(records_from_corpus(
            import_corpus_dir(sharded_dir))))
        assert sharded == reference


class TestSource:
    def test_version_and_listing(self, small_corpus, sharded_dir):
        source = CorpusDirSource(sharded_dir)
        assert source.version == CORPUS_DIR_VERSION_SHARDED
        assert source.count() == len(small_corpus)
        assert source.project_ids() == tuple(
            p.name for p in small_corpus.projects)

    def test_seek_load(self, small_corpus, sharded_dir):
        source = CorpusDirSource(sharded_dir)
        last = small_corpus.projects[-1]
        assert project_to_dict(source.load(last.name)) \
            == project_to_dict(last)

    def test_stratum_is_recorded_pattern(self, small_corpus,
                                         sharded_dir):
        source = CorpusDirSource(sharded_dir)
        project = small_corpus.projects[0]
        assert source.stratum(project.name) \
            == project.intended_pattern.value

    def test_iter_handle_shards_covers_everything(self, small_corpus,
                                                  sharded_dir):
        shards = list(CorpusDirSource(sharded_dir).iter_handle_shards())
        keys = [key for key, _ in shards]
        assert len(set(keys)) == len(keys)
        pids = [h.pid for _, handles in shards for h in handles]
        assert pids == [p.name for p in small_corpus.projects]

    def test_handles_match_fingerprints(self, sharded_dir):
        source = CorpusDirSource(sharded_dir)
        for handle in source.iter_handles():
            assert handle.fingerprint == source.fingerprint(handle.pid)


class TestIntegrity:
    def test_corrupt_shard_is_rejected(self, small_corpus, tmp_path):
        root = export_corpus_dir(small_corpus, tmp_path / "corrupt",
                                 shard_size=4)
        source = CorpusDirSource(root)
        manifest = json.loads((root / "manifest.json").read_text())
        shard = manifest["shards"][0]
        path = root / shard["file"]
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SourceError, match="does not match"):
            source.load(shard["projects"][0]["id"])

    def test_truncated_shard_is_rejected(self, small_corpus, tmp_path):
        root = export_corpus_dir(small_corpus, tmp_path / "short",
                                 shard_size=100)
        source = CorpusDirSource(root)
        path = root / "shards" / "0000.jsonl"
        path.write_bytes(path.read_bytes()[:50])
        with pytest.raises(SourceError, match="does not match"):
            source.load(source.project_ids()[-1])

    def test_missing_shard_file(self, small_corpus, tmp_path):
        root = export_corpus_dir(small_corpus, tmp_path / "gone",
                                 shard_size=100)
        source = CorpusDirSource(root)
        (root / "shards" / "0000.jsonl").unlink()
        assert source.fingerprint(source.project_ids()[0])
        with pytest.raises(SourceError, match="cannot read project"):
            source.load(source.project_ids()[0])


class TestStratifiedShardedExport:
    def test_limit_spans_patterns(self, small_corpus, tmp_path):
        root = export_corpus_dir(small_corpus, tmp_path / "five",
                                 limit=5, shard_size=2)
        back = import_corpus_dir(root)
        assert len(back) == 5
        assert len({p.intended_pattern for p in back.projects}) >= 4
