"""The HistorySource protocol, SourceHandle and the in-memory adapter."""

import pytest

from repro.errors import SourceError
from repro.sources import (
    CorpusDirSource,
    GitDirSource,
    HistorySource,
    InMemorySource,
    SyntheticSource,
    check_mode,
    source_from_spec,
)
from repro.sources.base import SourceHandle
from tests.conftest import make_history


class TestCheckMode:
    def test_accepts_both_modes(self):
        assert check_mode("corpus") == "corpus"
        assert check_mode("histories") == "histories"

    def test_rejects_unknown(self):
        with pytest.raises(SourceError, match="unknown source mode"):
            check_mode("parquet")


class TestProtocol:
    def test_all_sources_satisfy_protocol(self, tmp_path):
        from repro.corpus.generator import Corpus
        from repro.sources import export_corpus_dir
        root = export_corpus_dir(Corpus(projects=(), seed=1), tmp_path)
        assert isinstance(SyntheticSource(), HistorySource)
        # isinstance on a runtime protocol probes the attributes, so
        # the corpus dir must hold a readable manifest.
        assert isinstance(CorpusDirSource(root), HistorySource)
        assert isinstance(GitDirSource(tmp_path), HistorySource)
        assert isinstance(InMemorySource([]), HistorySource)

    def test_handle_is_hashable_and_frozen(self):
        handle = SourceHandle(pid="p", fingerprint="f")
        assert handle in {handle}
        with pytest.raises(AttributeError):
            handle.pid = "other"


class TestInMemorySource:
    def test_corpus_mode(self, small_corpus):
        source = InMemorySource(small_corpus.projects, mode="corpus")
        assert not source.lightweight
        assert len(source) == len(small_corpus)
        pids = source.project_ids()
        assert len(pids) == len(set(pids))
        first = source.load(pids[0])
        assert first is small_corpus.projects[0]

    def test_histories_mode(self):
        history = make_history(["CREATE TABLE t (a INT);"])
        source = InMemorySource([history], mode="histories")
        assert source.mode == "histories"
        assert source.load(source.project_ids()[0]) is history

    def test_fingerprint_tracks_content(self):
        h1 = make_history(["CREATE TABLE t (a INT);"], name="p")
        h2 = make_history(["CREATE TABLE t (a INT, b INT);"], name="p")
        fp = lambda h: InMemorySource([h], mode="histories").fingerprint(
            InMemorySource([h], mode="histories").project_ids()[0])
        assert fp(h1) != fp(h2)
        assert fp(h1) == fp(make_history(["CREATE TABLE t (a INT);"],
                                         name="p"))

    def test_unknown_pid(self):
        with pytest.raises(SourceError, match="unknown project id"):
            InMemorySource([]).load("00000:ghost")

    def test_unknown_mode(self):
        with pytest.raises(SourceError):
            InMemorySource([], mode="nope")


class TestSourceFromSpec:
    def test_synthetic_default_seed(self):
        source = source_from_spec("synthetic:")
        assert isinstance(source, SyntheticSource)

    def test_synthetic_explicit_seed(self):
        assert source_from_spec("synthetic:42").seed == 42

    def test_synthetic_seed_from_config(self):
        from repro.engine import StudyConfig
        source = source_from_spec("synthetic:", StudyConfig(seed=7))
        assert source.seed == 7

    def test_dir_and_git(self, tmp_path):
        assert isinstance(source_from_spec(f"dir:{tmp_path}"),
                          CorpusDirSource)
        assert isinstance(source_from_spec(f"git:{tmp_path}"),
                          GitDirSource)

    @pytest.mark.parametrize("bad", [
        "synthetic", "dir:", "git:", "csv:x", "synthetic:abc",
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(SourceError):
            source_from_spec(bad)
