"""SyntheticSource: lazy realization must equal eager generation."""

import pytest

from repro.corpus.dataset import project_to_dict
from repro.corpus.generator import generate_corpus
from repro.errors import SourceError
from repro.sources import SyntheticSource
from tests.conftest import SMALL_POPULATION


@pytest.fixture(scope="module")
def source():
    return SyntheticSource(seed=99, population=SMALL_POPULATION,
                           with_exceptions=False)


class TestLazyEqualsEager:
    def test_ids_match_corpus_order(self, source, small_corpus):
        assert source.project_ids() == tuple(
            p.name for p in small_corpus.projects)

    def test_loads_reproduce_generation(self, source, small_corpus):
        # Dict form compares everything that reaches disk or a worker:
        # commits, plan, source series, metadata.
        for project in small_corpus.projects:
            assert project_to_dict(source.load(project.name)) \
                == project_to_dict(project)

    def test_full_default_corpus_plan(self):
        # Planning the paper corpus is cheap; realization is what the
        # laziness defers. 151 ids, no project materialized.
        assert len(SyntheticSource()) == 151


class TestFingerprints:
    def test_stable_across_instances(self, source):
        other = SyntheticSource(seed=99, population=SMALL_POPULATION,
                                with_exceptions=False)
        for pid in source.project_ids():
            assert source.fingerprint(pid) == other.fingerprint(pid)

    def test_seed_changes_fingerprints(self, source):
        other = SyntheticSource(seed=100, population=SMALL_POPULATION,
                                with_exceptions=False)
        pid = source.project_ids()[0]
        assert other.project_ids()[0] == pid
        assert source.fingerprint(pid) != other.fingerprint(pid)

    def test_unique_per_project(self, source):
        prints = [source.fingerprint(p) for p in source.project_ids()]
        assert len(prints) == len(set(prints))


class TestErrors:
    def test_unknown_pid_load(self, source):
        with pytest.raises(SourceError, match="unknown project id"):
            source.load("no-such-project")

    def test_unknown_pid_fingerprint(self, source):
        with pytest.raises(SourceError):
            source.fingerprint("no-such-project")


class TestPickling:
    def test_source_pickles_small(self, source):
        import pickle
        source.project_ids()  # populate the plan before shipping
        blob = pickle.dumps(source)
        assert len(blob) < 50_000
        clone = pickle.loads(blob)
        assert clone.project_ids() == source.project_ids()
