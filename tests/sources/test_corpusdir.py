"""The JSONL corpus-directory format: export → import is lossless."""

import json

import pytest

from repro.corpus.dataset import project_to_dict
from repro.errors import SourceError
from repro.report.markdown import markdown_report
from repro.sources import (
    CorpusDirSource,
    export_corpus_dir,
    import_corpus_dir,
)
from repro.sources.corpusdir import stratified
from repro.study.pipeline import records_from_corpus, run_study


@pytest.fixture(scope="module")
def corpus_dir(small_corpus, tmp_path_factory):
    root = tmp_path_factory.mktemp("corpus") / "dir"
    return export_corpus_dir(small_corpus, root)


class TestRoundTrip:
    def test_projects_survive_byte_for_byte(self, small_corpus,
                                            corpus_dir):
        back = import_corpus_dir(corpus_dir)
        assert back.seed == small_corpus.seed
        assert len(back) == len(small_corpus)
        for original, restored in zip(small_corpus.projects,
                                      back.projects):
            assert project_to_dict(restored) == project_to_dict(original)

    def test_study_report_identical(self, small_corpus, corpus_dir):
        """The acceptance bar: same study, byte-identical report."""
        original = run_study(records_from_corpus(small_corpus))
        restored = run_study(
            records_from_corpus(import_corpus_dir(corpus_dir)))
        assert markdown_report(restored) == markdown_report(original)

    def test_export_is_deterministic(self, small_corpus, corpus_dir,
                                     tmp_path):
        again = export_corpus_dir(small_corpus, tmp_path / "again")
        a = (corpus_dir / "manifest.json").read_text()
        b = (again / "manifest.json").read_text()
        assert a == b


class TestSource:
    def test_lazy_listing_and_load(self, small_corpus, corpus_dir):
        source = CorpusDirSource(corpus_dir)
        assert source.lightweight
        assert source.mode == "corpus"
        assert source.seed == small_corpus.seed
        assert source.project_ids() == tuple(
            p.name for p in small_corpus.projects)
        loaded = source.load(source.project_ids()[0])
        assert project_to_dict(loaded) \
            == project_to_dict(small_corpus.projects[0])

    def test_fingerprint_needs_no_project_file(self, small_corpus,
                                               tmp_path):
        # The manifest digest is the fingerprint: remove the payload
        # files and fingerprints must still come back.
        root = export_corpus_dir(small_corpus, tmp_path / "gone")
        source = CorpusDirSource(root)
        pid = source.project_ids()[0]
        (root / "projects" / f"{pid}.jsonl").unlink()
        assert source.fingerprint(pid)
        with pytest.raises(SourceError, match="cannot read project"):
            source.load(pid)

    def test_unknown_pid(self, corpus_dir):
        with pytest.raises(SourceError, match="unknown project id"):
            CorpusDirSource(corpus_dir).load("ghost")


class TestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SourceError, match="not a corpus directory"):
            CorpusDirSource(tmp_path).project_ids()

    def test_wrong_format_tag(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(SourceError, match="not a repro-corpus-dir"):
            CorpusDirSource(tmp_path).project_ids()

    def test_future_version(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps(
            {"format": "repro-corpus-dir", "version": 99,
             "projects": []}))
        with pytest.raises(SourceError, match="unsupported"):
            CorpusDirSource(tmp_path).project_ids()

    def test_corrupt_project_file(self, small_corpus, tmp_path):
        root = export_corpus_dir(small_corpus, tmp_path / "corrupt")
        source = CorpusDirSource(root)
        pid = source.project_ids()[0]
        (root / "projects" / f"{pid}.jsonl").write_text("{nope\n")
        with pytest.raises(SourceError, match="invalid JSON"):
            source.load(pid)


class TestStratifiedLimit:
    def test_small_export_spans_patterns(self, small_corpus, tmp_path):
        root = export_corpus_dir(small_corpus, tmp_path / "five",
                                 limit=5)
        back = import_corpus_dir(root)
        assert len(back) == 5
        patterns = {p.intended_pattern for p in back.projects}
        assert len(patterns) >= 4

    def test_round_robin_order(self, small_corpus):
        picked = stratified(small_corpus.projects, 4)
        assert len({p.intended_pattern for p in picked}) == 4

    def test_limit_beyond_size_keeps_all(self, small_corpus):
        picked = stratified(small_corpus.projects, 10_000)
        assert len(picked) == len(small_corpus)
