"""Unit tests for the text table renderer."""

import pytest

from repro.viz.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "b"], [["x", 1], ["yy", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["a"], [["x"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_column_width_fits_longest(self):
        out = format_table(["h"], [["very-long-cell"]])
        separator = out.splitlines()[1]
        assert len(separator) >= len("very-long-cell")

    def test_floats_three_decimals(self):
        out = format_table(["v"], [[1.23456]])
        assert "1.235" in out

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert len(out.splitlines()) == 2

    def test_no_trailing_whitespace_on_lines(self):
        out = format_table(["a", "b"], [["x", "y"]])
        for line in out.splitlines():
            assert line == line.rstrip()
