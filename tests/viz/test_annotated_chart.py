"""Unit tests for the annotated (Fig.-1 style) chart."""

from repro.history.heartbeat import ActivitySeries
from repro.metrics.landmarks import compute_landmarks
from repro.viz.ascii_chart import annotated_chart


def chart_for(monthly, **kwargs):
    series = ActivitySeries(tuple(monthly))
    marks = compute_landmarks(series)
    return annotated_chart(series, marks, **kwargs), marks


class TestAnnotatedChart:
    def test_distinct_markers(self):
        out, marks = chart_for([2, 0, 0, 0, 0, 0, 0, 0, 0, 8] + [0] * 10)
        assert "B" in out and "T" in out
        assert "B=birth" in out
        assert "T=top band" in out

    def test_coincident_markers_merged(self):
        out, _marks = chart_for([10] + [0] * 19)
        assert "#" in out
        assert "#=birth+top" in out

    def test_vault_flag(self):
        out, marks = chart_for([10] + [0] * 19)
        assert marks.has_vault
        assert "[vault]" in out

    def test_no_vault_no_flag(self):
        out, marks = chart_for([2] + [0] * 17 + [8, 0])
        assert not marks.has_vault
        assert "[vault]" not in out

    def test_includes_base_chart(self):
        out, _marks = chart_for([1, 2, 3], title="x")
        assert "* schema" in out
        assert out.splitlines()[0] == "x"

    def test_marker_positions_ordered(self):
        out, _marks = chart_for([2, 0, 0, 0, 0, 0, 0, 0, 0, 8] + [0] * 10,
                                width=40)
        marker_line = next(l for l in out.splitlines()
                           if "B" in l and "T" in l and "=" not in l)
        assert marker_line.index("B") < marker_line.index("T")
