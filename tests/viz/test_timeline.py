"""Unit tests for the table-life timeline."""

import pytest

from repro.errors import MetricError
from repro.metrics.tables import table_lives
from repro.viz.timeline import table_timeline
from tests.conftest import make_history
from datetime import datetime


@pytest.fixture
def lives():
    v1 = "CREATE TABLE users (id INT, email TEXT);"
    v2 = v1 + " CREATE TABLE posts (id INT);"
    v3 = ("CREATE TABLE users (id INT, email TEXT, name TEXT);"
          " CREATE TABLE posts (id INT);")
    history = make_history([v1, v2, v3],
                           project_start=datetime(2020, 1, 1),
                           project_end=datetime(2021, 12, 31))
    return table_lives(history), history.pup_months


class TestTimeline:
    def test_row_per_table(self, lives):
        table_lives_, pup = lives
        out = table_timeline(table_lives_, pup)
        assert "users" in out
        assert "posts" in out

    def test_birth_and_update_markers(self, lives):
        table_lives_, pup = lives
        out = table_timeline(table_lives_, pup)
        users_row = next(l for l in out.splitlines()
                         if l.startswith("users"))
        assert "+" in users_row
        assert "*" in users_row  # the name-column injection

    def test_dropped_table_marked(self):
        history = make_history(["CREATE TABLE t (a INT);", "-- gone"],
                               project_end=datetime(2021, 1, 1))
        out = table_timeline(table_lives(history), history.pup_months)
        assert "x" in out.splitlines()[0]

    def test_max_rows_summarized(self, lives):
        table_lives_, pup = lives
        out = table_timeline(table_lives_, pup, max_rows=1)
        assert "and 1 more tables" in out

    def test_legend(self, lives):
        table_lives_, pup = lives
        assert "+ birth" in table_timeline(table_lives_, pup)

    def test_empty_raises(self):
        with pytest.raises(MetricError):
            table_timeline([], 10)

    def test_degenerate_width_raises(self, lives):
        table_lives_, pup = lives
        with pytest.raises(MetricError):
            table_timeline(table_lives_, pup, width=5)

    def test_long_names_truncated(self):
        history = make_history(
            ["CREATE TABLE a_very_long_table_name_indeed_it_is (a INT);"],
            project_end=datetime(2021, 1, 1))
        out = table_timeline(table_lives(history), history.pup_months)
        assert "a_very_long_table_name_i" in out
