"""Unit tests for ASCII and SVG chart rendering."""

import pytest

from repro.errors import MetricError
from repro.history.heartbeat import ActivitySeries
from repro.viz.ascii_chart import ascii_chart
from repro.viz.svg_chart import svg_chart

FLAT = ActivitySeries((10, 0, 0, 0, 0))
LATE = ActivitySeries((0, 0, 0, 0, 10))


class TestAsciiChart:
    def test_contains_axes_and_legend(self):
        out = ascii_chart(FLAT)
        assert "100% +" in out
        assert "0% +" in out
        assert "* schema" in out

    def test_title(self):
        out = ascii_chart(FLAT, title="flatliner-01")
        assert out.splitlines()[0] == "flatliner-01"

    def test_flatliner_marks_on_top_row(self):
        out = ascii_chart(FLAT, width=30, height=8)
        top_row = out.splitlines()[0]
        assert "*" in top_row

    def test_late_riser_marks_on_bottom_then_top(self):
        out = ascii_chart(LATE, width=30, height=8)
        lines = out.splitlines()
        assert "*" in lines[-3]  # bottom data row: long zero stretch

    def test_source_line_included(self):
        out = ascii_chart(FLAT, source=ActivitySeries((1, 1, 1, 1, 1)))
        assert ". source" in out
        assert "." in out

    def test_dimensions_respected(self):
        out = ascii_chart(FLAT, width=40, height=10)
        data_lines = [l for l in out.splitlines()
                      if l.startswith(("100%", "  0%", "     |"))]
        assert len(data_lines) == 10

    def test_degenerate_dimensions_raise(self):
        with pytest.raises(MetricError):
            ascii_chart(FLAT, width=1)
        with pytest.raises(MetricError):
            ascii_chart(FLAT, height=1)


class TestSvgChart:
    def test_valid_svg_document(self):
        out = svg_chart(FLAT)
        assert out.startswith("<svg")
        assert out.endswith("</svg>")
        assert "polyline" in out

    def test_title_escaped(self):
        out = svg_chart(FLAT, title="a <b> & c")
        assert "a &lt;b&gt; &amp; c" in out

    def test_source_adds_second_polyline(self):
        with_source = svg_chart(FLAT, source=LATE)
        without = svg_chart(FLAT)
        assert with_source.count("polyline") \
            == without.count("polyline") + 1

    def test_parses_as_xml(self):
        import xml.etree.ElementTree as ET
        ET.fromstring(svg_chart(FLAT, source=LATE, title="t"))
