"""Unit tests for the correlation heatmap renderers."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import MetricError
from repro.viz.heatmap import ascii_heatmap, svg_heatmap

NAMES = ["a", "b"]
MATRIX = {("a", "a"): 1.0, ("b", "b"): 1.0,
          ("a", "b"): -0.5, ("b", "a"): -0.5}


class TestAsciiHeatmap:
    def test_contains_values(self):
        out = ascii_heatmap(NAMES, MATRIX)
        assert "+1.00" in out
        assert "-0.50" in out

    def test_legend(self):
        out = ascii_heatmap(NAMES, MATRIX)
        assert "A=a" in out and "B=b" in out

    def test_missing_pair_raises(self):
        with pytest.raises(MetricError):
            ascii_heatmap(["a", "c"], MATRIX)

    def test_narrow_cell_raises(self):
        with pytest.raises(MetricError):
            ascii_heatmap(NAMES, MATRIX, cell_width=3)

    def test_row_per_name(self):
        out = ascii_heatmap(NAMES, MATRIX)
        data_lines = [l for l in out.splitlines()
                      if l.startswith(("a ", "b "))]
        assert len(data_lines) == 2


class TestSvgHeatmap:
    def test_valid_xml(self):
        ET.fromstring(svg_heatmap(NAMES, MATRIX))

    def test_cell_count(self):
        out = svg_heatmap(NAMES, MATRIX)
        assert out.count("<rect") == 1 + 4  # background + 2x2 cells

    def test_color_poles(self):
        from repro.viz.heatmap import _rho_color
        assert _rho_color(1.0) == "rgb(255,0,0)"
        assert _rho_color(-1.0) == "rgb(0,0,255)"
        assert _rho_color(0.0) == "rgb(255,255,255)"
