"""Unit tests for the DDL vocabulary (name pools, type helpers)."""

import random

from repro.corpus.templates import (
    NamePool,
    changed_type,
    column_name_pool,
    fresh_column_type,
    table_name_pool,
)
from repro.sqlddl.ast_nodes import DataType
from repro.sqlddl.normalize import canonical_type


class TestNamePool:
    def test_unique_names(self):
        pool = table_name_pool(random.Random(1))
        names = [pool.take() for _ in range(200)]
        assert len(set(names)) == 200

    def test_deterministic(self):
        a = [table_name_pool(random.Random(5)).take() for _ in range(3)]
        b = [table_name_pool(random.Random(5)).take() for _ in range(3)]
        assert a == b

    def test_fallback_to_numbered(self):
        pool = NamePool(random.Random(0), stems=("only",))
        first = pool.take()
        second = pool.take()
        assert first == "only"
        assert second.startswith("only_")

    def test_release_returns_name(self):
        pool = NamePool(random.Random(0), stems=("x", "y"))
        name = pool.take()
        pool.release(name)
        names = {pool.take(), pool.take()}
        assert name in names

    def test_column_pool_names_are_identifiers(self):
        pool = column_name_pool(random.Random(2))
        for _ in range(50):
            name = pool.take()
            assert name.replace("_", "a").isalnum()
            assert not name[0].isdigit()


class TestTypes:
    def test_fresh_types_are_valid(self):
        rng = random.Random(3)
        for _ in range(30):
            data_type = fresh_column_type(rng)
            assert isinstance(data_type, DataType)
            assert data_type.name

    def test_changed_type_always_differs_canonically(self):
        rng = random.Random(4)
        for _ in range(60):
            current = fresh_column_type(rng)
            changed = changed_type(current, rng)
            assert canonical_type(changed) != canonical_type(current), \
                (current, changed)

    def test_changed_type_from_none(self):
        assert changed_type(None, random.Random(0)).name == "INTEGER"

    def test_changed_type_unknown_current(self):
        rng = random.Random(5)
        current = DataType("GEOMETRY")
        changed = changed_type(current, rng)
        assert changed.name != "GEOMETRY"
