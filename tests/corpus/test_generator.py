"""Unit tests for corpus assembly."""

import pytest

from repro.corpus.generator import generate_corpus
from repro.errors import CorpusError
from repro.patterns.taxonomy import (
    PAPER_EXCEPTIONS,
    PAPER_POPULATION,
    Pattern,
)


class TestGenerateCorpus:
    def test_paper_population(self, full_corpus):
        assert len(full_corpus) == 151
        assert full_corpus.counts() == PAPER_POPULATION

    def test_exception_counts(self, full_corpus):
        by_pattern = full_corpus.by_pattern()
        for pattern, projects in by_pattern.items():
            exceptional = sum(1 for p in projects if p.is_exception)
            assert exceptional == PAPER_EXCEPTIONS[pattern]

    def test_names_unique(self, full_corpus):
        names = [p.name for p in full_corpus]
        assert len(set(names)) == len(names)

    def test_deterministic(self):
        population = {Pattern.FLATLINER: 2, Pattern.SIESTA: 1}
        a = generate_corpus(seed=5, population=population)
        b = generate_corpus(seed=5, population=population)
        assert [p.name for p in a] == [p.name for p in b]
        assert [p.history.commits[0].ddl_text for p in a] \
            == [p.history.commits[0].ddl_text for p in b]

    def test_different_seeds_differ(self):
        population = {Pattern.RADICAL_SIGN: 2}
        a = generate_corpus(seed=1, population=population)
        b = generate_corpus(seed=2, population=population)
        assert [p.plan.schedule for p in a] \
            != [p.plan.schedule for p in b]

    def test_histories_longer_than_a_year(self, full_corpus):
        # The paper's corpus filter: lifespan > 12 months.
        assert all(p.history.pup_months > 12 for p in full_corpus)

    def test_source_series_span_pup(self, full_corpus):
        for project in full_corpus.projects[:20]:
            assert project.source.months == project.history.pup_months

    def test_without_exceptions(self):
        population = {Pattern.SIGMOID: 3}
        corpus = generate_corpus(seed=3, population=population,
                                 with_exceptions=False)
        assert not any(p.is_exception for p in corpus)

    def test_negative_population_raises(self):
        with pytest.raises(CorpusError):
            generate_corpus(seed=1,
                            population={Pattern.FLATLINER: -1})

    def test_custom_population_over_quota(self):
        # More projects than the Fig-7 bucket quota: generator must
        # still deliver by reusing the dominant bucket.
        corpus = generate_corpus(
            seed=4, population={Pattern.FLATLINER: 30},
            with_exceptions=False)
        assert len(corpus) == 30

    def test_dialect_mix_present(self, full_corpus):
        dialects = {p.history.dialect for p in full_corpus}
        assert len(dialects) >= 2
