"""Tests: dump noise never alters measurements.

The central guarantee of :mod:`repro.corpus.noise`: a noisy corpus
measures *identically* to its clean twin — same heartbeats, same
landmarks, same classifications — while the parser records skips.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus.ddlgen import realize_history
from repro.corpus.generator import generate_corpus
from repro.corpus.noise import decorate_dump
from repro.corpus.planner import plan_schedule
from repro.history.heartbeat import schema_heartbeat
from repro.patterns.taxonomy import Pattern
from repro.schema.builder import build_schema
from repro.sqlddl.dialect import Dialect
from repro.sqlddl.parser import parse_script

POPULATION = {Pattern.FLATLINER: 1, Pattern.RADICAL_SIGN: 2,
              Pattern.REGULARLY_CURATED: 1}


class TestDecorateDump:
    def test_noise_added(self):
        clean = "CREATE TABLE t (a INT);\n"
        noisy = decorate_dump(clean, random.Random(1))
        assert len(noisy) > len(clean)
        assert "CREATE TABLE t" in noisy

    def test_schema_unchanged(self):
        clean = ("CREATE TABLE users (id INT PRIMARY KEY, email TEXT);\n"
                 "CREATE TABLE posts (id INT, author INT);\n")
        noisy = decorate_dump(clean, random.Random(2), Dialect.MYSQL)
        before = build_schema(parse_script(clean, Dialect.MYSQL))
        after = build_schema(parse_script(noisy, Dialect.MYSQL))
        assert before == after

    def test_noise_is_skipped_not_errored(self):
        clean = "CREATE TABLE t (a INT);\n"
        noisy = decorate_dump(clean, random.Random(3), Dialect.MYSQL)
        script = parse_script(noisy, Dialect.MYSQL)
        assert len(script.statements) == 1
        assert script.skipped  # the noise
        assert all(s.reason == "non-ddl" for s in script.skipped)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_noise_never_changes_schema_property(self, seed):
        rng = random.Random(seed)
        clean = ("CREATE TABLE a (x INT, y TEXT);\n"
                 "CREATE TABLE b (z INT REFERENCES a (x));\n")
        dialect = rng.choice(list(Dialect))
        noisy = decorate_dump(clean, rng, dialect)
        assert build_schema(parse_script(clean, dialect)) \
            == build_schema(parse_script(noisy, dialect))


class TestNoisyCorpus:
    def test_noisy_history_measures_like_plan(self):
        rng = random.Random(9)
        plan = plan_schedule(rng, pup_months=30, birth_month=1,
                             top_month=8, birth_units=20, agm=2,
                             post_units=25)
        history = realize_history(plan, random.Random(9), "noisy",
                                  with_noise=True)
        measured = {m: v for m, v
                    in enumerate(schema_heartbeat(history).monthly) if v}
        assert measured == plan.schedule
        assert any(v.parse_issues for v in history.versions())

    def test_noisy_corpus_same_measurements_as_clean(self):
        from repro.study.pipeline import records_from_corpus
        clean = generate_corpus(seed=42, population=POPULATION,
                                with_exceptions=False)
        noisy = generate_corpus(seed=42, population=POPULATION,
                                with_exceptions=False, with_noise=True)
        clean_records = records_from_corpus(clean)
        noisy_records = records_from_corpus(noisy)
        for a, b in zip(clean_records, noisy_records):
            assert a.name == b.name
            assert a.pattern is b.pattern
            assert a.profile.heartbeat.monthly \
                == b.profile.heartbeat.monthly
            assert a.labeled.feature_dict() == b.labeled.feature_dict()
