"""Unit tests for the DDL scribe and history realization.

The central invariant: the *measured* heartbeat of a realized history
equals the plan's schedule exactly, for any plan and seed.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus.ddlgen import DdlScribe, realize_history
from repro.corpus.planner import plan_schedule
from repro.history.heartbeat import schema_heartbeat
from repro.schema.builder import build_schema
from repro.sqlddl.parser import parse_script


def measured_schedule(history):
    series = schema_heartbeat(history)
    return {m: v for m, v in enumerate(series.monthly) if v}


class TestScribe:
    def test_snapshot_is_parseable(self):
        rng = random.Random(1)
        scribe = DdlScribe(rng)
        scribe.begin_month()
        scribe.apply_units(12, maintenance_bias=0.0, birth=True)
        script = parse_script(scribe.snapshot_sql())
        assert not script.skipped
        schema = build_schema(script)
        assert schema.attribute_count == 12

    def test_birth_month_expansion_only(self):
        rng = random.Random(2)
        scribe = DdlScribe(rng)
        scribe.begin_month()
        scribe.apply_units(30, maintenance_bias=0.9, birth=True)
        schema = build_schema(parse_script(scribe.snapshot_sql()))
        assert schema.attribute_count == 30

    def test_maintenance_changes_count_exactly(self):
        rng = random.Random(3)
        scribe = DdlScribe(rng)
        scribe.begin_month()
        scribe.apply_units(40, maintenance_bias=0.0, birth=True)
        before = build_schema(parse_script(scribe.snapshot_sql()))
        scribe.begin_month()
        scribe.apply_units(15, maintenance_bias=0.8)
        after = build_schema(parse_script(scribe.snapshot_sql()))
        from repro.diff.engine import diff_schemas
        assert diff_schemas(before, after).total_affected == 15

    def test_table_count_positive(self):
        rng = random.Random(4)
        scribe = DdlScribe(rng)
        scribe.begin_month()
        scribe.apply_units(5, maintenance_bias=0.0, birth=True)
        assert scribe.table_count >= 1


class TestRealizeHistory:
    def test_history_matches_plan(self):
        rng = random.Random(7)
        plan = plan_schedule(rng, pup_months=36, birth_month=3,
                             top_month=12, birth_units=25, agm=3,
                             post_units=40)
        history = realize_history(plan, rng, "proj")
        assert history.pup_months == 36
        assert measured_schedule(history) == plan.schedule

    def test_flatliner_plan(self):
        rng = random.Random(8)
        plan = plan_schedule(rng, pup_months=20, birth_month=0,
                             top_month=0, birth_units=15, agm=0,
                             post_units=0)
        history = realize_history(plan, rng, "flat")
        assert measured_schedule(history) == {0: 15}
        assert len(history) == 1

    def test_commits_sorted_and_named(self):
        rng = random.Random(9)
        plan = plan_schedule(rng, pup_months=30, birth_month=0,
                             top_month=10, birth_units=30, agm=2,
                             post_units=20)
        history = realize_history(plan, rng, "proj")
        timestamps = [c.timestamp for c in history.commits]
        assert timestamps == sorted(timestamps)
        assert all(c.sha.startswith("proj-m") for c in history.commits)

    def test_dialect_respected(self):
        from repro.sqlddl.dialect import Dialect
        rng = random.Random(10)
        plan = plan_schedule(rng, pup_months=20, birth_month=0,
                             top_month=0, birth_units=30, agm=0,
                             post_units=0)
        history = realize_history(plan, rng, "proj", Dialect.MYSQL)
        assert history.dialect is Dialect.MYSQL


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    pup=st.integers(14, 80),
    birth=st.integers(0, 10),
    interval=st.integers(0, 20),
    agm=st.integers(0, 4),
    birth_units=st.integers(1, 80),
    post_units=st.integers(0, 120),
    bias=st.floats(0.0, 0.6),
)
def test_realized_heartbeat_equals_plan(seed, pup, birth, interval, agm,
                                        birth_units, post_units, bias):
    """THE exactness property: for every feasible plan, the measured
    monthly heartbeat of the generated DDL history equals the plan."""
    from repro.errors import CorpusError
    rng = random.Random(seed)
    top = min(birth + interval, pup - 1)
    try:
        plan = plan_schedule(rng, pup_months=pup, birth_month=birth,
                             top_month=top, birth_units=birth_units,
                             agm=agm, post_units=post_units,
                             maintenance_bias=bias)
    except CorpusError:
        return
    history = realize_history(plan, rng, "prop")
    assert measured_schedule(history) == plan.schedule
