"""Unit tests for corpus persistence."""

import json

import pytest

from repro.corpus.dataset import load_corpus, save_corpus
from repro.errors import CorpusError
from repro.history.heartbeat import schema_heartbeat


class TestRoundTrip:
    def test_save_load_identity(self, small_corpus, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(small_corpus, path)
        loaded = load_corpus(path)
        assert len(loaded) == len(small_corpus)
        assert loaded.seed == small_corpus.seed
        for original, restored in zip(small_corpus, loaded):
            assert restored.name == original.name
            assert restored.intended_pattern is original.intended_pattern
            assert restored.is_exception == original.is_exception
            assert restored.plan.schedule == original.plan.schedule
            assert restored.source.monthly == original.source.monthly
            assert [c.ddl_text for c in restored.history.commits] \
                == [c.ddl_text for c in original.history.commits]

    def test_loaded_history_measures_identically(self, small_corpus,
                                                 tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(small_corpus, path)
        loaded = load_corpus(path)
        for original, restored in zip(small_corpus, loaded):
            assert schema_heartbeat(restored.history).monthly \
                == schema_heartbeat(original.history).monthly


class TestErrors:
    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops")
        with pytest.raises(CorpusError):
            load_corpus(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 99,
                                    "projects": []}))
        with pytest.raises(CorpusError):
            load_corpus(path)

    def test_malformed_record(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({
            "format_version": 1, "seed": 0,
            "projects": [{"name": "x"}]}))
        with pytest.raises(CorpusError):
            load_corpus(path)
