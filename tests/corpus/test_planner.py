"""Unit + property tests for the landmark planner."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus.planner import LandmarkPlan, plan_schedule
from repro.errors import CorpusError


def plan(seed=0, **kwargs):
    defaults = dict(pup_months=40, birth_month=2, top_month=10,
                    birth_units=20, agm=2, post_units=30)
    defaults.update(kwargs)
    return plan_schedule(random.Random(seed), **defaults)


class TestPlanSchedule:
    def test_basic_plan_valid(self):
        result = plan()
        result.validate()
        assert result.birth_units == 20
        assert result.active_growth_months == 2
        assert result.total_units <= 50

    def test_top_at_birth_needs_dominant_birth(self):
        result = plan(top_month=2, agm=0, birth_units=100, post_units=5)
        assert result.top_month == result.birth_month

    def test_top_at_birth_with_small_birth_raises(self):
        with pytest.raises(CorpusError):
            plan(top_month=2, agm=0, birth_units=5, post_units=100)

    def test_agm_must_fit_interval(self):
        with pytest.raises(CorpusError):
            plan(birth_month=2, top_month=4, agm=5)

    def test_agm_with_zero_interval_raises(self):
        with pytest.raises(CorpusError):
            plan(top_month=2, agm=1, birth_units=100, post_units=5)

    def test_zero_birth_units_raises(self):
        with pytest.raises(CorpusError):
            plan(birth_units=0)

    def test_negative_post_raises(self):
        with pytest.raises(CorpusError):
            plan(post_units=-1)

    def test_tail_stays_under_ten_percent(self):
        result = plan(tail_months=3, post_units=100, birth_units=50)
        tail = sum(v for m, v in result.schedule.items()
                   if m > result.top_month)
        assert tail < 0.1 * result.total_units

    def test_crossing_exactly_at_top(self):
        result = plan()
        total = result.total_units
        running = 0
        crossed = None
        for month in range(result.pup_months):
            running += result.schedule.get(month, 0)
            if crossed is None and running >= 0.9 * total:
                crossed = month
        assert crossed == result.top_month


class TestPlanValidation:
    def test_birth_outside_pup_rejected(self):
        bad = LandmarkPlan(pup_months=10, birth_month=12, top_month=12,
                           schedule={12: 5})
        with pytest.raises(CorpusError):
            bad.validate()

    def test_schedule_before_birth_rejected(self):
        bad = LandmarkPlan(pup_months=10, birth_month=5, top_month=5,
                           schedule={3: 2, 5: 10})
        with pytest.raises(CorpusError):
            bad.validate()

    def test_nonpositive_units_rejected(self):
        bad = LandmarkPlan(pup_months=10, birth_month=0, top_month=0,
                           schedule={0: 0})
        with pytest.raises(CorpusError):
            bad.validate()

    def test_wrong_top_rejected(self):
        bad = LandmarkPlan(pup_months=10, birth_month=0, top_month=5,
                           schedule={0: 100})
        with pytest.raises(CorpusError):
            bad.validate()


@settings(max_examples=150, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    pup=st.integers(14, 100),
    birth_frac=st.floats(0.0, 0.7),
    interval_frac=st.floats(0.0, 0.3),
    agm=st.integers(0, 4),
    birth_units=st.integers(1, 100),
    post_units=st.integers(0, 200),
)
def test_planner_output_always_validates(seed, pup, birth_frac,
                                          interval_frac, agm, birth_units,
                                          post_units):
    """Whenever plan_schedule returns, its plan passes validation and the
    landmarks equal the request."""
    rng = random.Random(seed)
    birth = int(birth_frac * (pup - 1))
    top = min(birth + int(interval_frac * (pup - 1)), pup - 1)
    try:
        result = plan_schedule(rng, pup_months=pup, birth_month=birth,
                               top_month=top, birth_units=birth_units,
                               agm=agm, post_units=post_units)
    except CorpusError:
        return  # infeasible request: rejection is the correct answer
    result.validate()
    assert result.birth_month == birth
    assert result.top_month == top
    assert result.birth_units == birth_units
    assert result.active_growth_months == agm
