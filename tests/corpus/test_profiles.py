"""Unit tests for the per-pattern landmark samplers."""

import random

import pytest

from repro.corpus.profiles import (
    BIRTH_BUCKETS,
    EXCEPTION_KINDS,
    sampler_for,
)
from repro.labels.quantization import DEFAULT_SCHEME
from repro.patterns.definitions import definition_of
from repro.patterns.taxonomy import (
    PAPER_EXCEPTIONS,
    PAPER_POPULATION,
    Pattern,
    REAL_PATTERNS,
)


class _PlanLabels:
    """Label a landmark plan directly (without realizing DDL)."""

    def __init__(self, plan):
        scheme = DEFAULT_SCHEME
        pup = plan.pup_months
        birth, top = plan.birth_month, plan.top_month

        def pct(months):
            return months / (pup - 1) if pup > 1 else 0.0

        self.birth_timing = scheme.birth_timing(birth, pct(birth))
        self.top_band_timing = scheme.top_band_timing(top, pct(top))
        self.interval_birth_to_top = scheme.interval_birth_to_top(
            top - birth, pct(top - birth))
        self.active_growth_months = plan.active_growth_months


def bucket_of(month):
    if month == 0:
        return 0
    if month <= 6:
        return 1
    if month <= 12:
        return 2
    return 3


class TestSamplersHitDefinitions:
    @pytest.mark.parametrize("pattern", REAL_PATTERNS)
    def test_plans_satisfy_their_definition(self, pattern):
        sampler = sampler_for(pattern)
        definition = definition_of(pattern)
        rng = random.Random(123)
        buckets = [b for b, count in
                   enumerate(BIRTH_BUCKETS[pattern]) if count]
        for trial in range(12):
            bucket = buckets[trial % len(buckets)]
            plan = sampler.sample(rng, bucket)
            plan.validate()
            assert definition.matches(_PlanLabels(plan)), \
                f"{pattern} trial {trial}"

    @pytest.mark.parametrize("pattern", REAL_PATTERNS)
    def test_plans_respect_birth_bucket(self, pattern):
        sampler = sampler_for(pattern)
        rng = random.Random(321)
        for bucket, count in enumerate(BIRTH_BUCKETS[pattern]):
            if count == 0:
                continue
            plan = sampler.sample(rng, bucket)
            assert bucket_of(plan.birth_month) == bucket, \
                f"{pattern} bucket {bucket}"

    def test_unknown_pattern_raises(self):
        with pytest.raises(KeyError):
            sampler_for(Pattern.UNCLASSIFIED)


class TestExceptionPlans:
    def test_exception_kinds_match_paper_counts(self):
        for pattern, kinds in EXCEPTION_KINDS.items():
            assert len(kinds) == PAPER_EXCEPTIONS[pattern]

    @pytest.mark.parametrize(
        "pattern,kind",
        [(p, k) for p, kinds in EXCEPTION_KINDS.items() for k in kinds])
    def test_exception_violates_exactly_one_constraint(self, pattern,
                                                       kind):
        sampler = sampler_for(pattern)
        definition = definition_of(pattern)
        rng = random.Random(55)
        buckets = [b for b, c in
                   enumerate(BIRTH_BUCKETS[pattern]) if c]
        for trial in range(6):
            plan = sampler.sample(rng, buckets[trial % len(buckets)],
                                  exception_kind=kind)
            violations = definition.min_violations(_PlanLabels(plan))
            assert len(violations) == 1, (pattern, kind, violations)


class TestPaperConstants:
    def test_bucket_totals_equal_population(self):
        for pattern, buckets in BIRTH_BUCKETS.items():
            assert sum(buckets) == PAPER_POPULATION[pattern]

    def test_fig7_column_totals(self):
        # Fig. 7 column sums: 52 / 38 / 13 / 48 (paper; our M7-12 column
        # absorbs one borderline project, totals must still reach 151).
        columns = [sum(BIRTH_BUCKETS[p][b] for p in REAL_PATTERNS)
                   for b in range(4)]
        assert columns[0] == 52
        assert sum(columns) == 151
