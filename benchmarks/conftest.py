"""Shared fixtures for the benchmark harness.

Every benchmark renders its paper artifact (table/figure) and registers
the text through :func:`record`; a terminal-summary hook prints all
artifacts after the timing tables, and copies are written under
``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.corpus.generator import DEFAULT_SEED, generate_corpus
from repro.engine import StudyConfig
from repro.study.pipeline import records_from_corpus, run_study

_RESULTS_DIR = Path(__file__).parent / "results"
_RENDERED: dict[str, str] = {}

#: The one execution configuration every benchmark shares (serial,
#: uncached — individual perf benchmarks derive parallel/cached
#: variants from it with ``STUDY_CONFIG.replace(...)``).
STUDY_CONFIG = StudyConfig(seed=DEFAULT_SEED)


def record(name: str, text: str) -> None:
    """Register one rendered paper artifact for the summary printout."""
    _RENDERED[name] = text
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def corpus():
    """The paper-sized synthetic corpus (one per session)."""
    return generate_corpus(config=STUDY_CONFIG)


@pytest.fixture(scope="session")
def records(corpus):
    """Measured + labeled study records for the corpus."""
    return records_from_corpus(corpus, config=STUDY_CONFIG)


@pytest.fixture(scope="session")
def study(records):
    """The full study results bundle."""
    return run_study(records, config=STUDY_CONFIG)


def pytest_terminal_summary(terminalreporter):
    """Print every rendered paper artifact after the benchmark run."""
    if not _RENDERED:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 72)
    write("REPRODUCED PAPER ARTIFACTS "
          "(copies under benchmarks/results/)")
    write("=" * 72)
    for name in sorted(_RENDERED):
        write("")
        write(f"--- {name} " + "-" * max(0, 60 - len(name)))
        for line in _RENDERED[name].splitlines():
            write(line)
