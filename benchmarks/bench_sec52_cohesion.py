"""S52 — §5.2: pattern cohesion via Mean Distance to Centroid.

Paper: MDC between 0.06 and 1.25 over 20-point vectors in [0, 1].
"""

from repro.mining.centroids import centroid_report
from repro.patterns.taxonomy import Pattern
from repro.report.render import render_section52

from benchmarks.conftest import record


def _groups(records):
    groups = {}
    for r in records:
        groups.setdefault(r.pattern.value, []).append(r.profile.vector)
    return groups


def test_sec52_cohesion(benchmark, records, study):
    report = benchmark(lambda: centroid_report(_groups(records)))
    assert len(report.mdc) == 8
    for pattern, mdc in report.mdc.items():
        assert 0.0 <= mdc <= 1.6, pattern  # paper range: 0.06 .. 1.25
    # Flatliners are maximally cohesive: every vector is all-ones.
    assert report.mdc[Pattern.FLATLINER.value] < 0.3

    # Family level (paper: families are pairwise different and
    # internally cohesive).
    from repro.analysis.families import compute_family_cohesion
    families = compute_family_cohesion(records)
    assert families.families_distinct
    from repro.viz.tables import format_table
    family_rows = [[name, families.sizes[name],
                    families.report.mdc[name]]
                   for name in sorted(families.sizes)]
    family_table = format_table(
        ["Family", "n", "MDC"], family_rows,
        title=f"Family cohesion (min between-family centroid gap "
              f"{families.min_between_gap:.2f})")
    record("sec52_cohesion",
           render_section52(study) + "\n\n" + family_table)
