"""ABL-4 — table-level rigidity (cross-check with companion studies).

The paper's schema-level "aversion to change" has a table-level
counterpart in the authors' companion work (gravitation to rigidity of
tables). Because the corpus carries real DDL histories, the table-level
aggregates can be measured directly and cross-checked: most table lives
never change after birth, and most survive to the end of the project.
"""

from repro.analysis.table_level import compute_table_level
from repro.viz.tables import format_table

from benchmarks.conftest import record


def test_ablation_table_level(benchmark, records):
    result = benchmark(compute_table_level, records)

    assert result.total_lives > 400
    # The table-level aversion-to-change trait.
    assert result.rigid_share > 0.5
    assert result.alive_share > 0.6

    quarter_rows = [
        [f"Q{i + 1}", f"{share:.0%}"]
        for i, share in enumerate(result.rigidity_by_birth_quarter)]
    rows = [
        ["table lives", result.total_lives],
        ["rigid (no post-birth change)", f"{result.rigid_share:.0%}"],
        ["alive at project end", f"{result.alive_share:.0%}"],
        ["median updates (changed tables)",
         result.median_updates_active],
        ["median birth size (attributes)", result.median_birth_size],
    ] + [[f"rigidity, born in {q}", v] for q, v in quarter_rows]
    record("ablation_table_level", format_table(
        ["statistic", "value"], rows,
        title="Extension — table-level rigidity across the corpus"))
