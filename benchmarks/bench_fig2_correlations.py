"""F2 — Fig. 2: Spearman correlations of the time-related metrics.

Paper shapes: ActiveGrowthMonths tightly tied to its normalizations;
birth volume strongly (anti-)related to the birth-to-top interval; top
point vs top-to-end tail at rho ~ -1; birth vs top at rho ~ 0.61.
"""

from repro.analysis.records import measures_of
from repro.mining.correlation import spearman_matrix
from repro.analysis.records import MEASURE_NAMES
from repro.report.render import render_correlations
from repro.viz.heatmap import ascii_heatmap

from benchmarks.conftest import record


def test_fig2_correlations(benchmark, records, study):
    matrix = benchmark(lambda: spearman_matrix(measures_of(records)))
    assert matrix[("PointOfTopBand_pctPUP",
                   "IntervalTopToEnd_pctPUP")] < -0.95
    assert 0.4 < matrix[("PointOfBirth_pctPUP",
                         "PointOfTopBand_pctPUP")] < 0.95
    assert matrix[("ActiveGrowthMonths", "ActiveMonths_pctPUP")] > 0.8
    # Higher birth volume -> shorter climb to the top band.
    assert matrix[("BirthVolume_pctTotal",
                   "IntervalBirthToTop_pctPUP")] < -0.4
    heatmap = ascii_heatmap(MEASURE_NAMES, matrix)
    record("fig2_correlations",
           render_correlations(study) + "\n\n" + heatmap)
