"""S62+ — birth-time prediction beyond Fig. 7 (paper future work).

The paper calls "solid foundations for the prediction of future
behavior" an open problem and expects it to be hard (§6.2). This
benchmark quantifies exactly that: leave-one-out, a Laplace-smoothed
Naive Bayes over birth-observable features (birth bucket + schema size
at birth) is compared against the majority baseline and the Fig-7
bucket-only heuristic.

Finding (a negative result worth reporting): both learned predictors
clear the majority baseline by a wide margin, but adding the birth-size
feature does NOT beat the plain birth-month heuristic — the birth month
is the dominant signal at birth time, corroborating the paper's claim
that richer prediction needs project/team features the schema alone
does not carry.
"""

from repro.analysis.prediction import birth_bucket
from repro.mining.predictor import leave_one_out, size_bin
from repro.viz.tables import format_table

from benchmarks.conftest import record


def _birth_features(corpus):
    samples = []
    labels = []
    for project in corpus:
        first = project.history.versions()[0].schema
        samples.append({
            "birth_bucket": str(birth_bucket(
                project.history.commit_month(
                    project.history.commits[0]))),
            "birth_size": size_bin(first.attribute_count),
        })
        labels.append(project.intended_pattern.value)
    return samples, labels


def test_sec62_birth_time_prediction(benchmark, corpus):
    samples, labels = _birth_features(corpus)
    report = benchmark(lambda: leave_one_out(samples, labels,
                                             alpha=0.5))

    # Both informed predictors beat the majority baseline clearly ...
    assert report.accuracy > report.baseline_accuracy
    assert report.bucket_only_accuracy > report.baseline_accuracy + 0.08
    # ... and the bucket-only heuristic stays competitive: the birth
    # month is the dominant (and nearly the only) birth-time signal.
    assert report.bucket_only_accuracy >= report.accuracy - 0.02

    record("sec62_predictor", format_table(
        ["predictor", "leave-one-out accuracy"],
        [["majority class", f"{report.baseline_accuracy:.0%}"],
         ["Fig-7 birth bucket only", f"{report.bucket_only_accuracy:.0%}"],
         ["Naive Bayes (bucket + birth size)",
          f"{report.accuracy:.0%}"]],
        title="Sec. 6.2 extension — predicting the pattern at schema "
              "birth (prediction is hard, as the paper expects)"))
