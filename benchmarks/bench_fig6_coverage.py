"""F6 — Fig. 6: active-domain coverage / essential disjointedness.

Paper shape: patterns occupy focused, almost-disjoint regions of the
defining feature space; a couple of acknowledged shared spots exist; a
large part of the full Cartesian product stays unpopulated.
"""

from repro.analysis.coverage import compute_coverage
from repro.report.render import render_coverage

from benchmarks.conftest import record


def test_fig6_coverage(benchmark, records, study):
    coverage = benchmark(compute_coverage, records)
    assert coverage.populated_cells < coverage.total_cells_possible / 2
    assert len(coverage.shared_cells) <= 4
    # Every cell's population belongs overwhelmingly to one pattern.
    for cell, patterns in coverage.cells.items():
        total = sum(patterns.values())
        dominant = max(patterns.values())
        assert dominant / total >= 0.5, cell
    record("fig6_coverage", render_coverage(study))
