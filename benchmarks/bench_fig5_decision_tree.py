"""F5 — Fig. 5: decision tree over the defining label features.

Paper: a simple tree separates the manually annotated patterns with only
4 of 151 projects misclassified.
"""

from repro.mining.decision_tree import DecisionTree
from repro.report.render import render_tree
from repro.study.pipeline import _tree_sample

from benchmarks.conftest import record


def _fit(records):
    samples = [_tree_sample(r) for r in records]
    labels = [r.pattern.value for r in records]
    tree = DecisionTree(max_depth=4).fit(samples, labels)
    return tree, tree.training_errors(samples, labels)


def test_fig5_decision_tree(benchmark, records, study):
    tree, errors = benchmark(_fit, records)
    # Paper shape: a handful (4/151) misclassified, nothing more.
    assert len(errors) <= 6
    assert tree.root.depth() <= 4
    record("fig5_decision_tree", render_tree(study))
