"""S63 — §6.3: mixture of change types per pattern.

Paper shapes: change biased toward expansion; granule of change mostly
whole tables; Be-Quick family frequently monothematic; the active
patterns mix change kinds.
"""

from repro.analysis.change_mix import compute_change_mix
from repro.diff.changes import ChangeKind
from repro.patterns.taxonomy import Pattern
from repro.report.render import render_section63

from benchmarks.conftest import record


def test_sec63_change_mix(benchmark, records, study):
    mix = benchmark(compute_change_mix, records)

    assert mix.overall_expansion_fraction > 0.6
    assert mix.overall_table_granule_fraction > 0.5

    flat = mix.row(Pattern.FLATLINER)
    assert flat.monothematic_projects == flat.count

    # Active patterns use several change kinds.
    curated = mix.row(Pattern.REGULARLY_CURATED)
    kinds_used = sum(1 for v in curated.kind_totals.values() if v > 0)
    assert kinds_used >= 4
    assert curated.kind_totals[ChangeKind.EJECTED] > 0
    assert curated.kind_totals[ChangeKind.TYPE_CHANGED] > 0

    record("sec63_change_mix", render_section63(study))
