"""ABL-1 — sensitivity of the classification to the Table-1 boundaries.

DESIGN.md flags the quantization boundaries as a design choice ("avoid
overfitting the labels to the data set"). This ablation jitters every
boundary by ±0.05 and measures how many pattern assignments survive:
a taxonomy that collapses under a 5-point boundary shift would be an
artifact of the quantization, not of the data.
"""

from repro.labels.quantization import LabelScheme, label_profile
from repro.patterns.classifier import classify
from repro.patterns.taxonomy import Pattern
from repro.viz.tables import format_table

from benchmarks.conftest import record


def _shifted_scheme(delta: float) -> LabelScheme:
    return LabelScheme(
        birth_volume_bounds=(0.25 + delta, 0.75 + delta),
        timing_bounds=(0.25 + delta, 0.75 + delta),
        interval_birth_top_bounds=(0.1 + delta, 0.35 + delta,
                                   0.75 + delta),
        interval_top_end_bounds=(0.25 + delta, 0.75 + delta),
        active_growth_bounds=(0.2 + delta, 0.75 + delta),
        active_pup_bounds=(0.08 + delta / 2, 0.5 + delta),
    )


def _stability(records, delta: float) -> float:
    scheme = _shifted_scheme(delta)
    unchanged = 0
    for record_ in records:
        relabeled = label_profile(record_.profile, scheme)
        if classify(relabeled) is record_.pattern:
            unchanged += 1
    return unchanged / len(records)


def test_ablation_scheme_sensitivity(benchmark, records):
    deltas = (-0.05, -0.02, 0.02, 0.05)
    stabilities = benchmark(
        lambda: {delta: _stability(records, delta) for delta in deltas})
    # Small jitters must not reshuffle the taxonomy: the bulk of the
    # assignments survives every shift.
    for delta, stability in stabilities.items():
        assert stability >= 0.70, (delta, stability)
    rows = [[f"{delta:+.2f}", f"{stability:.0%}"]
            for delta, stability in sorted(stabilities.items())]
    rows.append(["0.00 (paper)", "100%"])
    record("ablation_scheme",
           format_table(["boundary shift", "assignments unchanged"],
                        rows,
                        title="Ablation — quantization-boundary "
                              "sensitivity"))
