"""F4 — Fig. 4: per-pattern characteristics overview.

Paper shapes per row: Flatliners all V0/V0/zero/full-tail; Radical Sign
early tops; Stairway patterns without vaults; Smoking Funnel with fair
interval and >3 growth months.
"""

from repro.labels.classes import (
    IntervalBirthToTopClass,
    IntervalTopToEndClass,
)
from repro.patterns.taxonomy import Pattern
from repro.report.render import render_fig4_overview

from benchmarks.conftest import record


def _by_pattern(records):
    groups = {}
    for r in records:
        groups.setdefault(r.pattern, []).append(r)
    return groups


def test_fig4_overview(benchmark, records, study):
    text = benchmark(render_fig4_overview, study)
    groups = _by_pattern(records)

    flatliners = groups[Pattern.FLATLINER]
    assert all(r.labeled.birth_timing.value == "v0" for r in flatliners)
    assert all(r.labeled.interval_top_to_end
               is IntervalTopToEndClass.FULL for r in flatliners)

    funnels = [r for r in groups[Pattern.SMOKING_FUNNEL]
               if not r.is_exception]
    assert all(r.labeled.interval_birth_to_top
               is IntervalBirthToTopClass.FAIR for r in funnels)
    assert all(r.labeled.active_growth_months > 3 for r in funnels)

    stairway = (groups[Pattern.QUANTUM_STEPS]
                + groups[Pattern.REGULARLY_CURATED])
    assert all(not r.labeled.has_single_vault
               for r in stairway if not r.is_exception)

    record("fig4_overview", text)
