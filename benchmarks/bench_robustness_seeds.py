"""ROB — robustness of the headline shapes across corpus seeds.

The corpus is sampled; the reproduction's claims must not hinge on one
lucky seed. This benchmark regenerates the full corpus under two
alternative seeds and re-asserts the headline shapes on each.
"""

from repro.corpus.generator import generate_corpus
from repro.patterns.taxonomy import Family, Pattern, family_of
from repro.study.pipeline import records_from_corpus, run_study
from repro.viz.tables import format_table

from benchmarks.conftest import record

_SEEDS = (1, 2)


def _headlines(seed: int) -> dict:
    results = run_study(records_from_corpus(generate_corpus(seed=seed)))
    stats = results.stats34
    by_family = {family: 0 for family in Family}
    for record_ in results.records:
        by_family[family_of(record_.pattern)] += 1
    return {
        "seed": seed,
        "quick_family": by_family[Family.BE_QUICK_OR_BE_DEAD],
        "stairway_family": by_family[Family.STAIRWAY_TO_HEAVEN],
        "late_family": by_family[Family.SCARED_TO_FALL_ASLEEP_AGAIN],
        "born_v0": stats.born_at_v0,
        "zero_agm": stats.zero_active_growth,
        "tree_errors": len(results.tree_misclassified),
        "rho_top_tail": results.correlations[
            ("PointOfTopBand_pctPUP", "IntervalTopToEnd_pctPUP")],
        "frozen_at_m0": results.prediction.frozen_probability(0),
    }


def test_robustness_across_seeds(benchmark):
    # One full-corpus study per seed is ~10 s; a single round suffices
    # for a robustness check (this is not a timing-sensitive target).
    rows = benchmark.pedantic(
        lambda: [_headlines(seed) for seed in _SEEDS],
        rounds=1, iterations=1)
    for headline in rows:
        # Families are fixed by the population; the measured shapes must
        # reproduce under every seed.
        assert headline["quick_family"] == 97
        assert headline["stairway_family"] == 37
        assert headline["late_family"] == 17
        assert 45 <= headline["born_v0"] <= 58
        assert headline["zero_agm"] >= 80
        assert headline["tree_errors"] <= 6
        assert headline["rho_top_tail"] < -0.95
        assert 0.65 <= headline["frozen_at_m0"] <= 0.85

    table_rows = [[h["seed"], h["born_v0"], h["zero_agm"],
                   h["tree_errors"], f"{h['rho_top_tail']:.2f}",
                   f"{h['frozen_at_m0']:.0%}"] for h in rows]
    record("robustness_seeds", format_table(
        ["seed", "born V0", "zero AGM", "tree errors",
         "rho(top,tail)", "P(frozen|M0)"], table_rows,
        title="Robustness — headline shapes under alternative corpus "
              "seeds"))
