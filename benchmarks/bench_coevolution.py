"""COEV — joint schema/source evolution measures (extension, cf. [45]).

The paper's companion study ([45], EDBT 2023) examines the lag between
schema and source-code evolution. The measures are computed here over
the paired series of the corpus; the schema side is fully real (it is
the measured heartbeat), the source side is the generator's plausible
filler — so only schema-derived shapes are asserted.
"""

from repro.analysis.coevolution import compute_coevolution
from repro.viz.tables import format_table

from benchmarks.conftest import record


def test_coevolution(benchmark, records):
    result = benchmark(compute_coevolution, records)

    assert len(result.rows) == 151
    # Schema birth lags the project start for the late-born patterns;
    # about a third of the corpus is born with the project (Fig. 7).
    assert 0.25 <= result.share_born_with_project <= 0.45
    assert result.median_birth_lag >= 0
    # The defining asymmetry: the source side is active most months,
    # the schema side only rarely (aversion to change).
    schema_shares = [r.schema_active_share for r in result.rows]
    source_shares = [r.source_active_share for r in result.rows]
    assert (sum(schema_shares) / len(schema_shares)
            < 0.5 * sum(source_shares) / len(source_shares))

    rows = [
        ["projects with paired series", len(result.rows)],
        ["median schema-birth lag (months)", result.median_birth_lag],
        ["share born with the project",
         f"{result.share_born_with_project:.0%}"],
        ["median schema/source overlap",
         f"{result.median_overlap:.0%}"],
        ["mean schema-active share of months",
         f"{sum(schema_shares) / len(schema_shares):.0%}"],
        ["mean source-active share of months",
         f"{sum(source_shares) / len(source_shares):.0%}"],
    ]
    record("coevolution", format_table(
        ["measure", "value"], rows,
        title="Extension — joint schema/source evolution measures "
              "(source side synthetic; see DESIGN.md)"))
