"""T2 — Table 2: population, exceptions and overlaps per pattern.

Paper: 23/41/19/14/23/14/7/10 projects; exceptions 0/0/2/1/2/0/0/3;
zero overlaps.
"""

from repro.patterns.classifier import ClassificationResult
from repro.patterns.exceptions import exception_report
from repro.patterns.taxonomy import PAPER_EXCEPTIONS, PAPER_POPULATION
from repro.report.render import render_table2

from benchmarks.conftest import record


def _report(records):
    return exception_report(
        (r.labeled, ClassificationResult(pattern=r.pattern,
                                         is_exception=r.is_exception))
        for r in records)


def test_table2_exceptions(benchmark, records, study):
    result = benchmark(_report, records)
    populations = {row[0]: row[1] for row in result.rows}
    exceptions = {row[0]: row[2] for row in result.rows}
    overlaps = {row[0]: row[3] for row in result.rows}
    assert populations == PAPER_POPULATION
    assert exceptions == PAPER_EXCEPTIONS
    assert all(v == 0 for v in overlaps.values())
    record("table2_exceptions", render_table2(study))
