"""F3 — Fig. 3: example cumulative-progress charts, one per pattern."""

from repro.metrics.profile import ProjectProfile
from repro.patterns.taxonomy import REAL_PATTERNS
from repro.viz.ascii_chart import ascii_chart

from benchmarks.conftest import record


def _gallery(corpus):
    by_pattern = corpus.by_pattern()
    charts = []
    for pattern in REAL_PATTERNS:
        exemplar = next(p for p in by_pattern[pattern]
                        if not p.is_exception)
        profile = ProjectProfile.from_history(exemplar.history,
                                              source=exemplar.source)
        charts.append(ascii_chart(
            profile.heartbeat, source=profile.source,
            width=56, height=10,
            title=f"{pattern.value} — {exemplar.name} "
                  f"({profile.pup_months} months)"))
    return "\n\n".join(charts)


def test_fig3_examples(benchmark, corpus):
    gallery = benchmark(_gallery, corpus)
    for pattern in REAL_PATTERNS:
        assert pattern.value in gallery
    record("fig3_examples", gallery)
