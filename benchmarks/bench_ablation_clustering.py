"""ABL-2 — the §5.5 completeness probe, run quantitatively.

The paper argues its 8-pattern taxonomy is (practically) complete via
manual inspection. Here we probe it blind: k-means over the 20-point
cumulative-progress vectors. If a coarse-grained pattern were missing,
blind clusters would cut across the taxonomy rather than align with it.
"""

from collections import Counter

from repro.mining.clustering import kmeans, silhouette_score
from repro.viz.tables import format_table

from benchmarks.conftest import record


def _purity(assignment, patterns) -> float:
    """Mean majority share per blind cluster w.r.t. the taxonomy."""
    total = 0
    matched = 0
    for cluster in set(assignment):
        members = [patterns[i] for i, a in enumerate(assignment)
                   if a == cluster]
        matched += Counter(members).most_common(1)[0][1]
        total += len(members)
    return matched / total


def test_ablation_clustering_completeness(benchmark, records):
    vectors = [r.profile.vector for r in records]
    patterns = [r.pattern.value for r in records]

    def probe():
        assignment = kmeans(vectors, k=8, seed=7)
        purity = _purity(assignment, patterns)
        silhouettes = {k: silhouette_score(vectors,
                                           kmeans(vectors, k=k, seed=7))
                       for k in (2, 4, 6, 8, 10)}
        return purity, silhouettes

    purity, silhouettes = benchmark(probe)
    # Blind clusters align substantially with the manual taxonomy.
    assert purity >= 0.50
    # The vector space has real coarse structure (positive silhouettes),
    # and nothing suggests many more than ~8 groups.
    assert max(silhouettes.values()) > 0.3
    rows = [[f"k={k}", f"{value:.2f}"]
            for k, value in sorted(silhouettes.items())]
    rows.append(["purity @ k=8 vs taxonomy", f"{purity:.0%}"])
    record("ablation_clustering",
           format_table(["probe", "value"], rows,
                        title="Ablation — blind clustering vs the "
                              "8-pattern taxonomy (Sec. 5.5 probe)"))
