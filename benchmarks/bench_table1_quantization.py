"""T1 — Table 1: label distribution of the quantized metrics.

Paper shape: Full birth volume 39; V0 births 52; 62 zero growth
intervals; 98 zero active growth months.
"""

from repro.analysis.stats_tables import compute_table1
from repro.report.render import render_table1

from benchmarks.conftest import record


def test_table1_quantization(benchmark, records, study):
    result = benchmark(compute_table1, records)
    assert result.total == 151
    # The heavy-left skew of every label distribution must hold.
    assert result.count("Time Point of Birth (%PUP)", "v0") >= 45
    assert result.count("Active Months as %Growth", "zero") >= 80
    assert result.count("Volume of Birth (%Total Change)", "full") >= 30
    record("table1_quantization", render_table1(study))
