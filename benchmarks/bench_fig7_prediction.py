"""F7 — Fig. 7: P(pattern | point of schema birth).

Paper headlines: born in M0 -> 75 % completely frozen; born M1–M6 ->
~53 % sharp focused evolution; born after M12 -> ~64 % sharp focused,
~15 % Smoking Funnel. Side stats: 34 % born at M0, ~60 % within the
first six months.
"""

import pytest

from repro.analysis.prediction import compute_prediction
from repro.patterns.taxonomy import Family, Pattern
from repro.report.render import render_prediction

from benchmarks.conftest import record


def test_fig7_prediction(benchmark, records, study):
    prediction = benchmark(compute_prediction, records)

    assert prediction.frozen_probability(0) == pytest.approx(0.75,
                                                             abs=0.08)
    sharp_m1_6 = prediction.family_probability(
        Family.BE_QUICK_OR_BE_DEAD, 1)
    assert sharp_m1_6 == pytest.approx(0.53, abs=0.10)
    sharp_late = prediction.family_probability(
        Family.BE_QUICK_OR_BE_DEAD, 3)
    assert sharp_late == pytest.approx(0.64, abs=0.10)
    assert prediction.probability(Pattern.SMOKING_FUNNEL, 3) \
        == pytest.approx(0.15, abs=0.06)

    born = prediction.birth_distribution()
    assert born[0] == pytest.approx(0.34, abs=0.05)
    assert born[0] + born[1] == pytest.approx(0.60, abs=0.06)

    record("fig7_prediction", render_prediction(study))
