"""ABL-3 — effect of rename detection on measured activity.

The diff engine optionally re-matches dropped/added table pairs with
near-identical attribute sets (a pure RENAME TABLE would otherwise read
as a mass delete + mass create). This ablation quantifies the effect on
a rename-heavy synthetic history: with detection ON the measured
activity drops to the real attribute-level changes only.
"""

from datetime import datetime

from repro.diff.engine import DiffOptions
from repro.history.commit import Commit
from repro.history.repository import SchemaHistory
from repro.metrics.profile import ProjectProfile
from repro.viz.tables import format_table

from benchmarks.conftest import record


def _rename_heavy_history() -> SchemaHistory:
    v1 = """
    CREATE TABLE user (id INT PRIMARY KEY, email TEXT, name TEXT);
    CREATE TABLE post (id INT PRIMARY KEY, author INT, body TEXT);
    """
    # Both tables renamed; one real injected column.
    v2 = """
    CREATE TABLE users (id INT PRIMARY KEY, email TEXT, name TEXT);
    CREATE TABLE posts (id INT PRIMARY KEY, author INT, body TEXT,
                        created_at TIMESTAMP);
    """
    # Another rename round plus one type change.
    v3 = """
    CREATE TABLE accounts (id INT PRIMARY KEY, email TEXT, name TEXT);
    CREATE TABLE posts (id INT PRIMARY KEY, author INT, body TEXT,
                        created_at DATE);
    """
    commits = [
        Commit("v1", datetime(2020, 1, 1), v1),
        Commit("v2", datetime(2020, 6, 1), v2),
        Commit("v3", datetime(2020, 11, 1), v3),
    ]
    return SchemaHistory("renamer", commits,
                         project_end=datetime(2021, 6, 1))


def test_ablation_rename_detection(benchmark):
    history = _rename_heavy_history()

    def measure():
        history._versions = None
        naive = ProjectProfile.from_history(history)
        history._versions = None
        smart = ProjectProfile.from_history(
            history, diff_options=DiffOptions(detect_renames=True,
                                     rename_threshold=0.6))
        return naive.total_activity, smart.total_activity

    naive_total, smart_total = benchmark(measure)
    # Birth: 6 attributes either way. Naive re-counts every renamed
    # table wholesale; detection reduces post-birth change to the two
    # genuine events (injection + type change).
    assert naive_total > smart_total
    assert smart_total == 6 + 2
    assert naive_total >= 6 + 12
    record("ablation_renames", format_table(
        ["diff mode", "measured affected attributes"],
        [["name-only matching", naive_total],
         ["with rename detection", smart_total]],
        title="Ablation — rename detection on a rename-heavy history"))
