"""ROB-2 — robustness of the study under realistic dump noise.

Real FOSS ``.sql`` files carry headers, SETs, INSERTs and transaction
chatter around the DDL. This benchmark re-runs the full study on a
noise-decorated twin of the corpus and asserts that every classification
and every headline statistic is identical — i.e. the robust parser
isolates the logical schema perfectly.
"""

from repro.corpus.generator import generate_corpus
from repro.study.compare import compare_studies
from repro.study.pipeline import records_from_corpus, run_study
from repro.viz.tables import format_table

from benchmarks.conftest import record


def test_robustness_under_dump_noise(benchmark, study):
    def noisy_study():
        noisy_corpus = generate_corpus(with_noise=True)
        return run_study(records_from_corpus(noisy_corpus))

    noisy = benchmark.pedantic(noisy_study, rounds=1, iterations=1)

    delta = compare_studies(study, noisy)
    assert delta.zero_agm_share_delta == 0.0
    assert delta.vault_share_delta == 0.0
    assert delta.median_activity_delta == 0.0
    assert delta.tree_errors_delta == 0
    assert all(v == 0.0 for v in delta.family_share_delta.values())

    clean_patterns = [r.pattern for r in study.records]
    noisy_patterns = [r.pattern for r in noisy.records]
    assert clean_patterns == noisy_patterns

    skipped_statements = sum(
        v.parse_issues
        for r in noisy.records
        for v in (r.profile.history.versions()
                  if r.profile.history else ()))
    assert skipped_statements > 500  # the noise really was there

    record("robustness_noise", format_table(
        ["check", "result"],
        [["projects", noisy.total],
         ["noise statements skipped by the parser",
          skipped_statements],
         ["classification changes vs clean corpus", 0],
         ["headline-statistic changes vs clean corpus", 0]],
        title="Robustness — full study on a noise-decorated corpus"))
