"""PERF — throughput of the pipeline stages.

Not a paper artifact: timings of the substrate (parser, builder, diff,
heartbeat), of the full study, and of the execution engine's three
modes (serial, process-parallel, warm content-addressed cache), so
regressions are visible.
"""

import json
import os
import random
import time
from pathlib import Path

from benchmarks.conftest import STUDY_CONFIG, record
from repro.corpus.ddlgen import DdlScribe
from repro.corpus.generator import generate_corpus
from repro.diff.engine import diff_schemas
from repro.history.heartbeat import schema_heartbeat
from repro.metrics.profile import ProjectProfile
from repro.patterns.taxonomy import Pattern
from repro.schema.builder import build_schema
from repro.sqlddl.parser import parse_script
from repro.study.pipeline import (
    records_from_corpus,
    run_full_study,
    run_study,
)

#: Worker count of the parallel benchmarks (bounded: CI runners are
#: small, and oversubscription would only measure scheduler noise).
PARALLEL_JOBS = min(4, os.cpu_count() or 1)


def _big_dump(tables: int = 60) -> str:
    rng = random.Random(13)
    scribe = DdlScribe(rng)
    scribe.begin_month()
    scribe.apply_units(tables * 6, maintenance_bias=0.0, birth=True)
    return scribe.snapshot_sql()


DUMP = _big_dump()
SCHEMA_A = build_schema(parse_script(DUMP))
SCHEMA_B = build_schema(parse_script(_big_dump(50)))


def test_perf_parse_large_dump(benchmark):
    script = benchmark(parse_script, DUMP)
    assert len(script.statements) >= 40


def test_perf_build_schema(benchmark):
    script = parse_script(DUMP)
    schema = benchmark(build_schema, script)
    assert schema.attribute_count >= 300


def test_perf_diff_large_schemas(benchmark):
    delta = benchmark(diff_schemas, SCHEMA_A, SCHEMA_B)
    assert delta.total_affected > 0


def test_perf_profile_one_project(benchmark, corpus):
    project = max(corpus.projects, key=lambda p: len(p.history))
    project.history._versions = None  # measure parsing too

    def profile():
        project.history._versions = None
        return ProjectProfile.from_history(project.history)

    result = benchmark(profile)
    assert result.total_activity > 0


def test_perf_heartbeat(benchmark, corpus):
    project = corpus.projects[0]
    series = benchmark(schema_heartbeat, project.history)
    assert series.total > 0


def test_perf_generate_small_corpus(benchmark):
    population = {Pattern.FLATLINER: 2, Pattern.RADICAL_SIGN: 2,
                  Pattern.SIESTA: 1}

    def generate():
        return generate_corpus(seed=8, population=population,
                               with_exceptions=False)

    result = benchmark(generate)
    assert len(result) == 5


def test_perf_full_study(benchmark, records):
    results = benchmark(run_study, records)
    assert results.total == 151


# ----------------------------------------------------------------------
# execution-engine modes: serial vs. parallel map vs. warm cache


def _forget_parsed_versions(corpus):
    """Reset the histories' derived parse caches: every engine-mode
    measurement starts from raw DDL text, not a half-warm corpus."""
    for project in corpus.projects:
        project.history._versions = None


def test_perf_records_serial(benchmark, corpus):
    def run():
        _forget_parsed_versions(corpus)
        return records_from_corpus(corpus, config=STUDY_CONFIG)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(results) == 151


def test_perf_records_parallel(benchmark, corpus):
    config = STUDY_CONFIG.replace(jobs=PARALLEL_JOBS)

    def run():
        _forget_parsed_versions(corpus)
        return records_from_corpus(corpus, config=config)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(results) == 151


def test_perf_records_warm_cache(benchmark, corpus, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("record-cache")
    config = STUDY_CONFIG.replace(cache_dir=cache_dir)
    records_from_corpus(corpus, config=config)  # prime the cache

    def run():
        _forget_parsed_versions(corpus)
        return records_from_corpus(corpus, config=config)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(results) == 151


def test_perf_engine_mode_report(corpus, tmp_path_factory):
    """One-shot comparison of the three modes, kept as an artifact.

    On a multi-core host the parallel map beats serial roughly by the
    worker count (amortized chunking); the warm cache must beat serial
    everywhere, since it replaces measurement with pickle loads.
    """
    def timed(config):
        _forget_parsed_versions(corpus)
        started = time.perf_counter()
        results, timing = run_full_study(corpus, config)
        return time.perf_counter() - started, results, timing

    cache_dir = tmp_path_factory.mktemp("engine-mode-cache")
    serial_s, serial_res, _ = timed(STUDY_CONFIG)
    parallel_s, parallel_res, _ = timed(
        STUDY_CONFIG.replace(jobs=PARALLEL_JOBS))
    cold_s, _, _ = timed(STUDY_CONFIG.replace(cache_dir=cache_dir))
    warm_s, warm_res, warm_timing = timed(
        STUDY_CONFIG.replace(cache_dir=cache_dir))

    assert parallel_res.records == serial_res.records
    assert warm_res.records == serial_res.records
    hits = warm_timing.timing("records").cache_hits
    assert hits == 151
    assert warm_s < serial_s  # cache loads must beat measuring

    lines = [
        f"per-project map over 151 projects "
        f"(host: {os.cpu_count()} cpus)",
        f"  serial (jobs=1):          {serial_s * 1000:9.1f} ms",
        f"  parallel (jobs={PARALLEL_JOBS}):        "
        f"{parallel_s * 1000:9.1f} ms   "
        f"{serial_s / parallel_s:5.2f}x vs serial",
        f"  cold cache (write-through):{cold_s * 1000:8.1f} ms",
        f"  warm cache (151/151 hits): {warm_s * 1000:9.1f} ms   "
        f"{serial_s / warm_s:5.2f}x vs serial",
    ]
    record("perf_engine_modes", "\n".join(lines))
    if (os.cpu_count() or 1) >= 2:
        assert parallel_s < serial_s


def test_perf_incremental_vs_full(corpus):
    """Incremental statement-level parsing vs. the classic full re-parse.

    The incremental path (raw-text splitter + per-history statement
    memo + cross-version Table reuse) must produce *identical* study
    records while cutting the cold serial wall time by the fraction of
    statements unchanged between consecutive snapshots (~73% on this
    corpus). Results land in BENCH_perf_pipeline.json so the perf
    trajectory is machine-readable across PRs.
    """
    from repro.history.repository import set_incremental_parse_default
    from repro.sqlddl.memo import parse_counters, reset_parse_counters

    def timed(enabled):
        set_incremental_parse_default(enabled)
        try:
            _forget_parsed_versions(corpus)
            started = time.perf_counter()
            results, _ = run_full_study(corpus, STUDY_CONFIG)
            return time.perf_counter() - started, results
        finally:
            set_incremental_parse_default(True)

    full_s, full_res = timed(False)
    reset_parse_counters()
    inc_s, inc_res = timed(True)
    hits, misses = parse_counters()

    # Golden equivalence: byte-identical records and pattern assignment.
    assert inc_res.records == full_res.records
    assert ([r.pattern for r in inc_res.records]
            == [r.pattern for r in full_res.records])
    assert hits > 0  # the memo must actually serve repeats
    speedup = full_s / inc_s
    assert speedup > 1.3  # conservative bound; typically 2.5-3.5x

    hit_rate = hits / (hits + misses)
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    json_path = results_dir / "BENCH_perf_pipeline.json"
    payload = json.loads(json_path.read_text()) if json_path.exists() else {}
    payload.update({
        "projects": len(corpus.projects),
        "host_cpus": os.cpu_count(),
        "modes_ms": {
            "full_parse_serial": round(full_s * 1000, 1),
            "incremental_serial": round(inc_s * 1000, 1),
        },
        "speedup_incremental_vs_full": round(speedup, 2),
        "parse_memo": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hit_rate, 4),
        },
        "golden_equivalent": True,
        # Serial full-study baseline recorded by perf_engine_modes.txt
        # before this optimization existed (PR 2).
        "baseline_full_parse_serial_ms": 6699.4,
    })
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    record("perf_incremental_vs_full", "\n".join([
        f"cold full study, 151 projects, serial "
        f"(host: {os.cpu_count()} cpus)",
        f"  full re-parse:            {full_s * 1000:9.1f} ms",
        f"  incremental (memoized):   {inc_s * 1000:9.1f} ms   "
        f"{speedup:5.2f}x vs full",
        f"  statement memo: {hits} hits / {misses} misses "
        f"({hit_rate:.0%} hit rate)",
        "  records + pattern assignments: identical in both modes",
    ]))


def test_perf_records_map(corpus):
    """Records-map mode: cold serial map, kernel counters, golden A/B.

    Times exactly the unit the columnar kernel layer and the regex fast
    lexer optimize — the cold serial records map — and asserts the two
    invariants the layer promises: the heartbeat-kernel counters are
    live (every project builds its prefix table once and serves repeat
    lookups from the memo), and the fast path's records are
    byte-identical to the classic full re-parse. Numbers are merged
    into BENCH_perf_pipeline.json next to the incremental-parse
    trajectory.
    """
    from repro.history.kernel import kernel_counters, reset_kernel_counters
    from repro.history.repository import set_incremental_parse_default

    # Reference: classic full re-parse (the slow, trusted path).
    set_incremental_parse_default(False)
    try:
        _forget_parsed_versions(corpus)
        reference = records_from_corpus(corpus, config=STUDY_CONFIG)
    finally:
        set_incremental_parse_default(True)

    _forget_parsed_versions(corpus)
    reset_kernel_counters()
    started = time.perf_counter()
    records = records_from_corpus(corpus, config=STUDY_CONFIG)
    records_map_s = time.perf_counter() - started
    series_built, reuse_hits = kernel_counters()

    golden_equivalent = (
        records == reference
        and [r.pattern for r in records] == [r.pattern for r in reference])
    assert golden_equivalent
    # Counters must be live: one prefix table per project, and the
    # landmark/totals/progress-vector consumers served from the memo.
    assert series_built >= len(corpus.projects)
    assert reuse_hits > 0

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    json_path = results_dir / "BENCH_perf_pipeline.json"
    payload = json.loads(json_path.read_text()) if json_path.exists() else {}
    payload["records_map"] = {
        # Cold serial records map measured on the pre-kernel code
        # (incremental parsing only, PR 3) on the same host class.
        "baseline_pr3_ms": 2250.0,
        "records_map_ms": round(records_map_s * 1000, 1),
        "heartbeat_kernel": {
            "series_built": series_built,
            "reuse_hits": reuse_hits,
        },
        "golden_equivalent": golden_equivalent,
    }
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    record("perf_records_map", "\n".join([
        f"cold serial records map, {len(corpus.projects)} projects "
        f"(host: {os.cpu_count()} cpus)",
        f"  records map:              {records_map_s * 1000:9.1f} ms   "
        f"(pre-kernel baseline ~2250 ms)",
        f"  heartbeat kernel: {series_built} series built / "
        f"{reuse_hits} reuse hits",
        "  records + pattern assignments: identical to full re-parse",
    ]))


def test_perf_incremental_smoke():
    """CI smoke: the fast path must not silently regress to re-parsing.

    Runs the record computation on a tiny corpus and asserts the
    statement memo's hit rate is positive — if a refactor ever makes
    the incremental path fall back to full parsing everywhere, this
    fails fast without timing anything.
    """
    from repro.sqlddl.memo import parse_counters, reset_parse_counters

    population = {Pattern.FLATLINER: 1, Pattern.RADICAL_SIGN: 2,
                  Pattern.SIESTA: 1}
    small = generate_corpus(seed=7, population=population,
                            with_exceptions=False)
    reset_parse_counters()
    records = records_from_corpus(small)
    assert len(records) == 4
    hits, misses = parse_counters()
    assert hits > 0
    assert hits / (hits + misses) > 0.2


def test_perf_analyses_scaling():
    """Columnar analysis backend vs. per-record oracles at 100x scale.

    Replicates a 30-project base record set 100x (3000 records — the
    scale where the per-record passes' attribute-chain walks dominate)
    and times every corpus-level analysis both ways, in the shape the
    full study runs them: the fused kernels consume the RecordTable the
    map stage packed at harvest time (so the pack is timed separately —
    in production it overlaps the map), the per-record oracles consume
    the raw record list. Acceptance bar of the columnar refactor:
    >= 2x faster with a byte-identical rendered study report. The
    numbers land in BENCH_perf_pipeline.json as ``analyses_scaling``.
    """
    import dataclasses

    from repro import report as paper_report
    from repro.analysis.table import RecordTable
    from repro.engine import StudyPlan, execute_plan
    from repro.engine.study_plan import _analysis_stages

    population = {Pattern.FLATLINER: 4, Pattern.RADICAL_SIGN: 4,
                  Pattern.SIGMOID: 4, Pattern.LATE_RISER: 4,
                  Pattern.QUANTUM_STEPS: 4, Pattern.REGULARLY_CURATED: 4,
                  Pattern.SMOKING_FUNNEL: 3, Pattern.SIESTA: 3}
    base_corpus = generate_corpus(seed=8, population=population,
                                  with_exceptions=False)
    base = records_from_corpus(base_corpus, config=STUDY_CONFIG)
    records = tuple(dataclasses.replace(r, name=f"{r.name}~x{i:03d}")
                    for i in range(100) for r in base)
    assert len(records) == 3000

    pack_started = time.perf_counter()
    table = RecordTable.from_records(records)
    pack_s = time.perf_counter() - pack_started

    def timed(columnar):
        plan = StudyPlan(_analysis_stages(columnar))
        inputs = {"records": records}
        if columnar:
            inputs["table"] = table
        best, results = None, None
        for _ in range(3):
            started = time.perf_counter()
            results, _ = execute_plan(plan, inputs, STUDY_CONFIG)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best, results["results"]

    oracle_s, oracle_res = timed(False)
    fused_s, fused_res = timed(True)

    sections = (
        paper_report.render_table1, paper_report.render_table2,
        paper_report.render_correlations, paper_report.render_fig4_overview,
        paper_report.render_tree, paper_report.render_coverage,
        paper_report.render_prediction, paper_report.render_section34,
        paper_report.render_section52, paper_report.render_section61,
        paper_report.render_section63)
    golden_equivalent = all(render(fused_res) == render(oracle_res)
                            for render in sections)
    assert golden_equivalent  # byte-identical rendered study output
    speedup = oracle_s / fused_s
    assert speedup >= 2.0  # the tentpole's acceptance bar

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    json_path = results_dir / "BENCH_perf_pipeline.json"
    payload = json.loads(json_path.read_text()) if json_path.exists() else {}
    payload["analyses_scaling"] = {
        "records": len(records),
        "per_record_ms": round(oracle_s * 1000, 1),
        "columnar_ms": round(fused_s * 1000, 1),
        "pack_ms": round(pack_s * 1000, 1),
        "speedup_columnar_vs_per_record": round(speedup, 2),
        "golden_equivalent": golden_equivalent,
    }
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    record("perf_analyses_scaling", "\n".join([
        f"corpus-level analyses over {len(records)} records "
        f"(host: {os.cpu_count()} cpus)",
        f"  per-record oracles:       {oracle_s * 1000:9.1f} ms",
        f"  columnar fused kernels:   {fused_s * 1000:9.1f} ms   "
        f"{speedup:5.2f}x vs per-record",
        f"  (table pack:              {pack_s * 1000:9.1f} ms — "
        f"overlaps the map harvest in the full study)",
        "  rendered study report: byte-identical in both backends",
    ]))


def test_perf_warm_session(corpus, tmp_path_factory):
    """Warm engine session vs. cold run vs. fresh-session disk-warm run.

    The session keeps the worker pool and a hot in-memory cache layer
    alive across runs, so a re-study inside one session pays neither
    pool spawns nor disk reads: the records stage is 100% cache hits,
    every hit served from the hot layer, and zero new pools spawn. A
    fresh session over the same cache directory sits in between — disk
    hits, but cold pool and cold hot layer. The ``warm_session_ms``
    series lands in BENCH_perf_pipeline.json.
    """
    from repro.engine import EngineSession, read_ledger

    cache_dir = tmp_path_factory.mktemp("warm-session-cache")
    config = STUDY_CONFIG.replace(jobs=PARALLEL_JOBS,
                                  cache_dir=cache_dir)

    def timed(session):
        _forget_parsed_versions(corpus)
        started = time.perf_counter()
        results, timing = run_full_study(corpus, config,
                                         session=session)
        return time.perf_counter() - started, results, timing

    with EngineSession(config) as session:
        cold_s, cold_res, _ = timed(session)
        spawns_after_cold = session.pool_spawns
        warm_session_s, warm_res, warm_timing = timed(session)

        assert warm_res.records == cold_res.records
        stage = warm_timing.timing("records")
        assert stage.cache_hits == 151
        assert stage.cache_misses == 0
        # The headline service-shape numbers: no new pool, all hot.
        assert session.pool_spawns == spawns_after_cold
        assert len(session.runs) == 2
        assert session.runs[1].pool_spawns == 0
        assert session.runs[1].cache_hit_rate == 1.0
        assert session.runs[1].hot_hits == 151
        assert session.runs[0].result_digest == \
            session.runs[1].result_digest
        total_spawns = session.pool_spawns
        warm_hot_hits = session.runs[1].hot_hits

    with EngineSession(config) as fresh:
        warm_fresh_s, fresh_res, _ = timed(fresh)
    assert fresh_res.records == cold_res.records

    ledger = read_ledger(cache_dir)
    assert len(ledger) == 3  # cold + in-session warm + fresh warm
    assert warm_session_s < cold_s  # hot hits must beat measuring

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    json_path = results_dir / "BENCH_perf_pipeline.json"
    payload = json.loads(json_path.read_text()) if json_path.exists() else {}
    payload["warm_session"] = {
        "cold_session_ms": round(cold_s * 1000, 1),
        "warm_fresh_ms": round(warm_fresh_s * 1000, 1),
        "warm_session_ms": round(warm_session_s * 1000, 1),
        "hot_hits": warm_hot_hits,
        "pool_spawns": total_spawns,
        "golden_equivalent": True,
    }
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    record("perf_warm_session", "\n".join([
        f"engine session over 151 projects, jobs={PARALLEL_JOBS} "
        f"(host: {os.cpu_count()} cpus)",
        f"  cold run (spawn + compute): {cold_s * 1000:9.1f} ms",
        f"  fresh session, disk-warm:   {warm_fresh_s * 1000:9.1f} ms   "
        f"{cold_s / warm_fresh_s:5.2f}x vs cold",
        f"  same session, hot-warm:     {warm_session_s * 1000:9.1f} ms   "
        f"{cold_s / warm_session_s:5.2f}x vs cold",
        f"  warm run: 151/151 hits ({warm_hot_hits} hot), "
        f"0 new pool spawns, {total_spawns} spawned all session",
    ]))


def test_perf_source_dir_modes(corpus, tmp_path_factory):
    """Engine modes over an on-disk corpus directory (dir: source).

    The handle-based fan-out ships (pid, fingerprint) pairs to workers,
    which read and parse their own project files; the warm run serves
    every record straight from the cache without opening a single
    project file.
    """
    from repro.engine import execute_study_from_source
    from repro.sources import CorpusDirSource, export_corpus_dir

    root = export_corpus_dir(
        corpus, tmp_path_factory.mktemp("source-dir") / "corpus")
    source = CorpusDirSource(root)

    def timed(config):
        started = time.perf_counter()
        results, timing = execute_study_from_source(
            CorpusDirSource(root), config)
        return time.perf_counter() - started, results, timing

    cache_dir = tmp_path_factory.mktemp("source-dir-cache")
    serial_s, serial_res, _ = timed(STUDY_CONFIG)
    parallel_s, parallel_res, _ = timed(
        STUDY_CONFIG.replace(jobs=PARALLEL_JOBS))
    cold_s, _, _ = timed(STUDY_CONFIG.replace(cache_dir=cache_dir))
    warm_s, warm_res, warm_timing = timed(
        STUDY_CONFIG.replace(cache_dir=cache_dir))

    assert parallel_res.records == serial_res.records
    assert warm_res.records == serial_res.records
    assert warm_timing.cache_hits == len(source)
    assert warm_s < serial_s

    lines = [
        f"dir: source over {len(source)} on-disk projects "
        f"(host: {os.cpu_count()} cpus)",
        f"  serial (jobs=1):          {serial_s * 1000:9.1f} ms",
        f"  parallel (jobs={PARALLEL_JOBS}):        "
        f"{parallel_s * 1000:9.1f} ms   "
        f"{serial_s / parallel_s:5.2f}x vs serial",
        f"  cold cache (write-through):{cold_s * 1000:8.1f} ms",
        f"  warm cache ({len(source)}/{len(source)} hits): "
        f"{warm_s * 1000:9.1f} ms   "
        f"{serial_s / warm_s:5.2f}x vs serial",
    ]
    record("perf_source_dir_modes", "\n".join(lines))
    if (os.cpu_count() or 1) >= 2:
        assert parallel_s < serial_s


# ----------------------------------------------------------------------
# streaming scale-out: the 1x/10x/100x projects_scaling curve


#: Small-population base corpus the scaling source replicates.
_SCALE_POPULATION = {Pattern.FLATLINER: 2, Pattern.RADICAL_SIGN: 2,
                     Pattern.SIESTA: 1}

#: Per-process memo of the base source and its realized projects, so
#: replicas realize each base project once per worker instead of once
#: per replica (the replicas exist to scale the *flow*, not the DDL).
_SCALE_BASE: dict = {}


def _scale_base_source():
    source = _SCALE_BASE.get("source")
    if source is None:
        from repro.sources import SyntheticSource
        source = SyntheticSource(seed=8, population=_SCALE_POPULATION,
                                 with_exceptions=False)
        _SCALE_BASE["source"] = source
    return source


class ReplicatedSource:
    """``copies`` lazy replicas of the small base corpus.

    Every replica is a distinct project id with a distinct fingerprint,
    so the executor streams, chunks, ships and caches ``copies * 5``
    independent items — exactly the source→executor→session flow under
    test — while the DDL realization cost stays amortized per process.
    Picklable by construction (workers rebuild the memo themselves).
    """

    mode = "corpus"
    lightweight = True

    def __init__(self, copies: int):
        self.copies = copies

    def identity(self):
        return ["replicated-scale", self.copies, 8]

    def _replica_ids(self):
        base_ids = _scale_base_source().project_ids()
        for i in range(self.copies):
            for pid in base_ids:
                yield f"{pid}~x{i:05d}"

    def project_ids(self):
        return tuple(self._replica_ids())

    def iter_handles(self):
        from repro.sources.base import SourceHandle
        for pid in self._replica_ids():
            yield SourceHandle(pid=pid, fingerprint=self.fingerprint(pid))

    def count(self):
        return self.copies * len(_scale_base_source().project_ids())

    def fingerprint(self, pid):
        from repro.engine import fingerprint
        base_pid = pid.rsplit("~x", 1)[0]
        return fingerprint("replica", pid,
                           _scale_base_source().fingerprint(base_pid))

    def stratum(self, pid):
        return pid.rsplit("~x", 1)[0]

    def load(self, pid):
        base_pid = pid.rsplit("~x", 1)[0]
        memo = _SCALE_BASE.setdefault("projects", {})
        project = memo.get(base_pid)
        if project is None:
            project = _scale_base_source().load(base_pid)
            memo[base_pid] = project
        return project


def _handle_side_peak(source) -> int:
    """Parent-side peak bytes while enumerating every handle."""
    import tracemalloc
    from repro.engine import HandleStream
    tracemalloc.start()
    try:
        for _ in HandleStream(source):
            pass
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_perf_projects_scaling():
    """Wall-clock must grow ~linearly in project count; handle-side
    memory must not.

    Streams 1x/10x/100x replicas of a 30-project base through the full
    records map (parallel, no cache — every item computed) and asserts
    the acceptance bar of the streaming refactor: per-project cost at
    100x within 1.3x of 10x, and the parent's handle-side peak memory
    bounded instead of linear. The curve lands in
    BENCH_perf_pipeline.json as ``projects_scaling``.
    """
    from repro.engine import compute_records_from_source

    config = STUDY_CONFIG.replace(jobs=PARALLEL_JOBS)
    curve = []
    for label, copies in (("1x", 6), ("10x", 60), ("100x", 600)):
        source = ReplicatedSource(copies)
        total = source.count()
        handle_peak = _handle_side_peak(source)
        started = time.perf_counter()
        records, _ = compute_records_from_source(source, config)
        wall_s = time.perf_counter() - started
        assert len(records) == total
        curve.append({
            "scale": label,
            "projects": total,
            "wall_ms": round(wall_s * 1000, 1),
            "projects_per_sec": round(total / wall_s, 1),
            "handle_peak_kb": round(handle_peak / 1024, 1),
        })

    by_scale = {point["scale"]: point for point in curve}
    per_project_10x = by_scale["10x"]["wall_ms"] / by_scale["10x"]["projects"]
    per_project_100x = \
        by_scale["100x"]["wall_ms"] / by_scale["100x"]["projects"]
    # Near-linear: 100x may not cost more than 1.3x the 10x unit price
    # (it is usually cheaper — pool spawn and base realization amortize).
    assert per_project_100x <= 1.3 * per_project_10x
    # Flat handle-side memory: 10x the projects, not 10x the bytes.
    assert by_scale["100x"]["handle_peak_kb"] \
        <= 2 * by_scale["10x"]["handle_peak_kb"] + 256

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    json_path = results_dir / "BENCH_perf_pipeline.json"
    payload = json.loads(json_path.read_text()) if json_path.exists() else {}
    payload["projects_scaling"] = {
        "jobs": PARALLEL_JOBS,
        "curve": curve,
        "per_project_ms_10x": round(per_project_10x, 3),
        "per_project_ms_100x": round(per_project_100x, 3),
    }
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [f"streaming records map, jobs={PARALLEL_JOBS} "
             f"(host: {os.cpu_count()} cpus)"]
    for point in curve:
        lines.append(
            f"  {point['scale']:>4} = {point['projects']:5d} projects: "
            f"{point['wall_ms']:9.1f} ms   "
            f"{point['projects_per_sec']:7.1f} proj/s   "
            f"handle peak {point['handle_peak_kb']:7.1f} KiB")
    lines.append(
        f"  per-project cost 100x vs 10x: "
        f"{per_project_100x / per_project_10x:.2f}x (bar: <= 1.30x)")
    record("perf_projects_scaling", "\n".join(lines))


# ----------------------------------------------------------------------
# delta re-study: append-only incremental recompute


def test_perf_delta_restudy(corpus, tmp_path_factory):
    """Refresh after appending K versions vs. a cold full re-study.

    The delta layer's acceptance bar: grow K=8 of the 151 projects by
    2 commits each and re-derive the study. The refresh must (a) parse
    only the 16 new versions — pinned by the delta counters — (b)
    produce records byte-identical to a cold full study of the grown
    corpus, and (c) beat the cold re-study by >= 5x wall-clock (serial,
    warm result cache + checkpoints vs. a fresh cache dir). Numbers
    land in BENCH_perf_pipeline.json as ``delta_restudy``.
    """
    import dataclasses
    import shutil
    from datetime import timedelta

    from repro.engine import execute_study_from_source
    from repro.history.commit import Commit
    from repro.history.repository import SchemaHistory
    from repro.sources import (
        CorpusDirSource,
        export_corpus_dir,
        import_corpus_dir,
    )

    root = tmp_path_factory.mktemp("delta-restudy") / "corpus"
    export_corpus_dir(corpus, root)
    warm_cache = tmp_path_factory.mktemp("delta-warm-cache")
    warm_config = STUDY_CONFIG.replace(cache_dir=warm_cache)

    # Prime: one full study writes the result cache + the checkpoints.
    execute_study_from_source(CorpusDirSource(root), warm_config)

    # Grow K projects by 2 appended snapshot commits each.
    grown_projects, appended_commits = 8, 2
    on_disk = import_corpus_dir(root)
    projects = list(on_disk.projects)
    for idx in range(grown_projects):
        history = projects[idx].history
        commits = list(history.commits)
        for i in range(appended_commits):
            ts = commits[-1].timestamp + timedelta(days=30)
            commits.append(Commit(
                sha=f"grow-{i}", timestamp=ts,
                ddl_text=commits[-1].ddl_text
                + f"\nCREATE TABLE delta_extra_{i} (id INT);\n"))
        projects[idx] = dataclasses.replace(
            projects[idx],
            history=SchemaHistory(
                history.project_name, commits,
                project_start=history.project_start,
                project_end=max(history.project_end,
                                commits[-1].timestamp),
                dialect=history.dialect,
                incremental=history.incremental))
    shutil.rmtree(root)
    export_corpus_dir(dataclasses.replace(on_disk, projects=projects),
                      root)

    # Cold re-study of the grown corpus: fresh cache, everything parsed.
    cold_cache = tmp_path_factory.mktemp("delta-cold-cache")
    started = time.perf_counter()
    cold_res, cold_timing = execute_study_from_source(
        CorpusDirSource(root), STUDY_CONFIG.replace(cache_dir=cold_cache))
    cold_s = time.perf_counter() - started

    # Refresh: unchanged projects are cache hits, grown ones ride the
    # suffix kernel.
    started = time.perf_counter()
    refresh_res, refresh_timing = execute_study_from_source(
        CorpusDirSource(root), warm_config)
    refresh_s = time.perf_counter() - started

    assert refresh_res.records == cold_res.records
    assert refresh_timing.delta_appended == grown_projects
    assert refresh_timing.delta_rewritten == 0
    assert refresh_timing.delta_parsed \
        == grown_projects * appended_commits
    assert refresh_timing.cache_hits \
        == len(corpus.projects) - grown_projects
    speedup = cold_s / refresh_s
    assert speedup >= 5.0  # the delta layer's acceptance bar

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    json_path = results_dir / "BENCH_perf_pipeline.json"
    payload = json.loads(json_path.read_text()) if json_path.exists() else {}
    payload["delta_restudy"] = {
        "projects": len(corpus.projects),
        "grown_projects": grown_projects,
        "appended_versions": grown_projects * appended_commits,
        "cold_ms": round(cold_s * 1000, 1),
        "refresh_ms": round(refresh_s * 1000, 1),
        "versions_reused": refresh_timing.delta_reused,
        "versions_parsed": refresh_timing.delta_parsed,
        "speedup_refresh_vs_cold": round(speedup, 2),
        "golden_equivalent": True,
    }
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    record("perf_delta_restudy", "\n".join([
        f"append-only refresh, {len(corpus.projects)} projects, "
        f"{grown_projects} grown by {appended_commits} commits "
        f"(host: {os.cpu_count()} cpus)",
        f"  cold full re-study:       {cold_s * 1000:9.1f} ms",
        f"  incremental refresh:      {refresh_s * 1000:9.1f} ms   "
        f"{speedup:5.2f}x vs cold",
        f"  versions: {refresh_timing.delta_reused} reused / "
        f"{refresh_timing.delta_parsed} parsed "
        f"({refresh_timing.cache_hits} projects untouched, pure "
        f"cache hits)",
        "  records: byte-identical to the cold re-study",
    ]))
