"""PERF — throughput of the pipeline stages.

Not a paper artifact: timings of the substrate (parser, builder, diff,
heartbeat) and of the full study, so regressions are visible.
"""

import random

from repro.corpus.ddlgen import DdlScribe
from repro.corpus.generator import generate_corpus
from repro.diff.engine import diff_schemas
from repro.history.heartbeat import schema_heartbeat
from repro.metrics.profile import ProjectProfile
from repro.patterns.taxonomy import Pattern
from repro.schema.builder import build_schema
from repro.sqlddl.parser import parse_script
from repro.study.pipeline import records_from_corpus, run_study


def _big_dump(tables: int = 60) -> str:
    rng = random.Random(13)
    scribe = DdlScribe(rng)
    scribe.begin_month()
    scribe.apply_units(tables * 6, maintenance_bias=0.0, birth=True)
    return scribe.snapshot_sql()


DUMP = _big_dump()
SCHEMA_A = build_schema(parse_script(DUMP))
SCHEMA_B = build_schema(parse_script(_big_dump(50)))


def test_perf_parse_large_dump(benchmark):
    script = benchmark(parse_script, DUMP)
    assert len(script.statements) >= 40


def test_perf_build_schema(benchmark):
    script = parse_script(DUMP)
    schema = benchmark(build_schema, script)
    assert schema.attribute_count >= 300


def test_perf_diff_large_schemas(benchmark):
    delta = benchmark(diff_schemas, SCHEMA_A, SCHEMA_B)
    assert delta.total_affected > 0


def test_perf_profile_one_project(benchmark, corpus):
    project = max(corpus.projects, key=lambda p: len(p.history))
    project.history._versions = None  # measure parsing too

    def profile():
        project.history._versions = None
        return ProjectProfile.from_history(project.history)

    result = benchmark(profile)
    assert result.total_activity > 0


def test_perf_heartbeat(benchmark, corpus):
    project = corpus.projects[0]
    series = benchmark(schema_heartbeat, project.history)
    assert series.total > 0


def test_perf_generate_small_corpus(benchmark):
    population = {Pattern.FLATLINER: 2, Pattern.RADICAL_SIGN: 2,
                  Pattern.SIESTA: 1}

    def generate():
        return generate_corpus(seed=8, population=population,
                               with_exceptions=False)

    result = benchmark(generate)
    assert len(result) == 5


def test_perf_full_study(benchmark, records):
    results = benchmark(run_study, records)
    assert results.total == 151
