"""S34 — §3.4: statistical properties of the time-related measures.

Paper: 52 born at V0; half born in the first 10 %; 2/3 with zero active
growth months; 58 % with a vault; every measure non-normal (max p ~1e-9).
"""

from repro.analysis.normality import compute_normality
from repro.analysis.stats_tables import compute_section34_stats
from repro.report.render import render_section34

from benchmarks.conftest import record


def test_sec34_stats(benchmark, records, study):
    stats = benchmark(compute_section34_stats, records)
    assert 48 <= stats.born_at_v0 <= 56              # paper: 52
    assert 65 <= stats.born_first_10pct <= 95        # paper: 74
    assert 95 <= stats.born_first_25pct <= 115       # paper: 105
    assert 55 <= stats.top_attained_first_25pct <= 75  # paper: 64
    assert stats.zero_active_growth >= 80            # paper: 98
    assert stats.at_most_one_active_growth >= 100    # paper: 115
    assert 0.45 <= stats.vault_share <= 0.70         # paper: 58 %
    assert stats.interval_birth_top_under_10pct >= 70  # paper: 88

    normality = compute_normality(records)
    assert normality.all_non_normal
    assert normality.max_p_value < 1e-3

    record("sec34_stats", render_section34(study))
