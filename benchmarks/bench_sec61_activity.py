"""S61 — §6.1: activity volume per pattern.

Paper medians of post-birth change: Radical Sign 13, rest of Be-Quick <3,
Siesta 17, Quantum Steps 22, Smoking Funnel 189, Regularly Curated 250;
project durations similar across patterns.
"""

from repro.analysis.activity_relation import compute_activity_relation
from repro.mining.bootstrap import bootstrap_median_ci
from repro.patterns.taxonomy import Pattern
from repro.report.render import render_section61

from benchmarks.conftest import record


def test_sec61_activity(benchmark, records, study):
    result = benchmark(compute_activity_relation, records)
    medians = {row.pattern: row.median_post_birth for row in result.rows}

    assert medians[Pattern.FLATLINER] == 0
    assert 5 <= medians[Pattern.RADICAL_SIGN] <= 25        # paper 13
    assert medians[Pattern.SIGMOID] <= 10                  # paper < 3
    assert medians[Pattern.LATE_RISER] <= 10               # paper < 3
    assert 8 <= medians[Pattern.SIESTA] <= 35              # paper 17
    assert 10 <= medians[Pattern.QUANTUM_STEPS] <= 45      # paper 22
    assert medians[Pattern.SMOKING_FUNNEL] >= 90           # paper 189
    assert medians[Pattern.REGULARLY_CURATED] >= 120       # paper 250

    # Durations do not differ by an order of magnitude across patterns.
    pups = [row.median_pup for row in result.rows]
    assert max(pups) / min(pups) < 4

    # Bootstrap CIs for the per-pattern medians (statistical-rigor
    # extension over the paper, which reports point medians only).
    ci_rows = []
    for row in result.rows:
        sample = [r.profile.totals.post_birth_activity
                  for r in records if r.pattern is row.pattern]
        ci = bootstrap_median_ci(sample, seed=1)
        ci_rows.append([row.pattern.value, str(ci)])
    from repro.viz.tables import format_table
    ci_table = format_table(
        ["Pattern", "median post-birth activity [95% CI]"], ci_rows,
        title="Sec. 6.1 extension — bootstrap CIs for the medians")
    record("sec61_activity",
           render_section61(study) + "\n\n" + ci_table)
